"""Scaling: pipelines and engines on synthetic CARS instances.

The paper reports no measurements; these benchmarks characterize the
implementation: transformation runtime against instance size, the quality
gap (target size, invented values, key violations) that the novel
algorithms eliminate at every scale, and the reference-interpreter vs
batch-runtime comparison.  After the module finishes, the per-engine wall
times are serialized to ``BENCH_scaling.json`` at the repository root so
the speedup can be diffed across revisions.  Run with::

    pytest benchmarks/test_bench_scaling.py --benchmark-only
"""

import json
import time
from pathlib import Path

import pytest

from repro.bench import stamp_metadata
from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC, NOVEL
from repro.exchange.metrics import measure_instance
from repro.scenarios.cars import figure1_problem, figure12_problem, figure14_problem
from repro.scenarios.synthetic import cars2_instance, cars3_instance, cars4_instance

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_scaling.json"

SIZES = [100, 400, 1600]

#: (label, problem factory, instance factory) — the engine-comparison sweep;
#: the differential harness checks the same workloads for agreement.
WORKLOADS = [
    (
        "figure1-cars3",
        figure1_problem,
        lambda n: cars3_instance(n_persons=n // 2, n_cars=n, ownership=0.6, seed=n),
    ),
    (
        "figure12-cars4",
        figure12_problem,
        lambda n: cars4_instance(n_persons=n // 2, n_cars=n, seed=n),
    ),
    (
        "figure14-cars2",
        figure14_problem,
        lambda n: cars2_instance(n_persons=n // 2, n_cars=n, seed=n),
    ),
]

#: label -> size -> engine -> best wall seconds observed.
_timings: dict[str, dict[int, dict[str, float]]] = {}


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("algorithm", [BASIC, NOVEL])
def test_figure1_transform_scaling(benchmark, size, algorithm):
    system = MappingSystem(figure1_problem(), algorithm=algorithm)
    system.transformation  # exclude generation from the timing
    source = cars3_instance(n_persons=size // 2, n_cars=size, ownership=0.6, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info.update(
        {
            "source_tuples": source.total_size(),
            "target_tuples": metrics.total_tuples,
            "invented": metrics.distinct_invented,
            "key_violations": metrics.key_violations,
        }
    )
    if algorithm == NOVEL:
        assert metrics.ok
        assert metrics.distinct_invented == 0
    else:
        # The basic pipeline invents an owner/person pair per car and
        # violates the key for every owned car.
        assert metrics.distinct_invented == 3 * size
        assert metrics.key_violations > 0


@pytest.mark.parametrize("size", SIZES)
def test_figure12_owner_driver_scaling(benchmark, size):
    system = MappingSystem(figure12_problem())
    system.transformation
    source = cars4_instance(n_persons=size // 2, n_cars=size, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info["target_tuples"] = metrics.total_tuples
    assert metrics.ok
    assert metrics.total_tuples == size  # exactly one tuple per car


@pytest.mark.parametrize("size", SIZES)
def test_figure14_nullable_source_scaling(benchmark, size):
    system = MappingSystem(figure14_problem())
    system.transformation
    source = cars2_instance(n_persons=size // 2, n_cars=size, seed=size)

    def run():
        return system.transform(source)

    output = benchmark(run)
    assert measure_instance(output).ok
    owned = sum(
        1 for row in source.relation("C2") if not repr(row[2]) == "null"
    )
    assert len(output.relation("O3")) == owned


def test_generation_cost_is_data_independent(benchmark):
    """Pipeline generation runs once, independent of instance size."""

    def run():
        system = MappingSystem(figure1_problem())
        return system.transformation

    program = benchmark(run)
    assert len(program.rules) == 4


@pytest.mark.parametrize("engine", MappingSystem.ENGINES)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize(
    "label,problem_factory,instance_factory",
    WORKLOADS,
    ids=[w[0] for w in WORKLOADS],
)
def test_engine_scaling(benchmark, label, problem_factory, instance_factory, size, engine):
    """Reference interpreter vs compiled batch runtime on one workload."""
    system = MappingSystem(problem_factory())
    system.transformation  # exclude generation from the timing
    source = instance_factory(size)

    def run():
        started = time.perf_counter()
        result = system.run(source, engine=engine)
        return result, time.perf_counter() - started

    result, elapsed = benchmark(run)
    assert result.target.total_size() > 0
    benchmark.extra_info.update(
        {
            "engine": engine,
            "source_tuples": source.total_size(),
            "target_tuples": result.target.total_size(),
        }
    )
    per_size = _timings.setdefault(label, {}).setdefault(size, {})
    per_size[engine] = min(per_size.get(engine, float("inf")), elapsed)


def test_batch_engine_speedup_on_largest_workload():
    """Acceptance: batch is at least 2x faster on the largest CARS workload."""
    recorded = _timings.get("figure1-cars3", {}).get(max(SIZES), {})
    if "reference" not in recorded or "batch" not in recorded:
        pytest.skip("engine scaling benchmarks did not run in this session")
    speedup = recorded["reference"] / recorded["batch"]
    assert speedup >= 2.0, f"batch speedup {speedup:.2f}x < 2x on figure1-cars3"


def test_metrics_overhead_under_five_percent():
    """Acceptance: metrics collection costs <5% of batch wall time.

    Profile timing is batch-granular (two ``perf_counter`` reads per
    operator per batch — see ``_run_plan_profiled``), so collecting the
    full EXPLAIN ANALYZE profile plus the metric families must be nearly
    free on the largest figure1 workload.  Best-of-N, interleaved, with a
    1ms absolute slack so CI timer noise cannot flake the gate.
    """
    from repro.obs import MetricsRegistry, use_metrics

    size = max(SIZES)
    system = MappingSystem(figure1_problem())
    system.transformation  # exclude generation from the timing
    source = cars3_instance(
        n_persons=size // 2, n_cars=size, ownership=0.6, seed=size
    )
    registry = MetricsRegistry()
    best_off = best_on = float("inf")
    for _ in range(7):
        started = time.perf_counter()
        system.run(source, engine="batch")
        best_off = min(best_off, time.perf_counter() - started)
        started = time.perf_counter()
        with use_metrics(registry):
            result = system.run(source, engine="batch")
        best_on = min(best_on, time.perf_counter() - started)
    assert result.profile is not None  # metrics imply profile collection
    budget = max(best_off * 1.05, best_off + 0.001)
    assert best_on <= budget, (
        f"metrics-on batch run took {best_on * 1000:.2f}ms vs "
        f"{best_off * 1000:.2f}ms off (>5% overhead)"
    )


@pytest.fixture(scope="module", autouse=True)
def _write_bench_report():
    """Serialize the engine timings once the module's benchmarks ran."""
    yield
    if not _timings:
        return
    payload = {}
    for label in sorted(_timings):
        payload[label] = {}
        for size in sorted(_timings[label]):
            engines = _timings[label][size]
            entry = {
                engine: round(seconds, 6) for engine, seconds in engines.items()
            }
            if "reference" in engines and "batch" in engines:
                entry["speedup"] = round(
                    engines["reference"] / engines["batch"], 2
                )
            payload[label][str(size)] = entry
    stamped = stamp_metadata(payload)
    OUTPUT_PATH.write_text(json.dumps(stamped, indent=2) + "\n")
