"""Example 5.1 and chase scaling: logical relation generation cost."""

import pytest

from repro.core.chase import MODIFIED, STANDARD, logical_relations
from repro.scenarios.cars import cars2_schema, cars3_schema
from repro.scenarios.synthetic import chain_schema, wide_problem


def test_example_5_1_modified_chase(benchmark):
    schema = cars2_schema()

    def run():
        return logical_relations(schema, mode=MODIFIED)

    tableaux = benchmark(run)
    # Example 5.1: P2 | C2 (p = null) | C2, P2 (p != null).
    shapes = [
        (tuple(a.relation for a in t), len(t.null_vars), len(t.nonnull_vars))
        for t in tableaux
    ]
    assert shapes == [
        (("P2",), 0, 0),
        (("C2",), 1, 0),
        (("C2", "P2"), 0, 1),
    ]


def test_standard_chase_cars3(benchmark):
    schema = cars3_schema()

    def run():
        return logical_relations(schema, mode=STANDARD)

    tableaux = benchmark(run)
    assert [tuple(a.relation for a in t) for t in tableaux] == [
        ("P3",),
        ("C3",),
        ("O3", "C3", "P3"),
    ]


@pytest.mark.parametrize("depth", [2, 4, 6, 8])
def test_chain_chase_scaling(benchmark, depth):
    """Deep nullable FK chains: one tableau per prefix."""
    schema = chain_schema(depth, nullable_links=True)

    def run():
        return logical_relations(schema, mode=MODIFIED)

    tableaux = benchmark(run)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["tableaux"] = len(tableaux)
    root = [t for t in tableaux if t.root_relation == "R0"]
    assert len(root) == depth + 1


@pytest.mark.parametrize("n_nullable", [2, 4, 6, 8])
def test_wide_chase_scaling(benchmark, n_nullable):
    """2**n partial tableaux from n nullable attributes in one relation."""
    problem = wide_problem(n_nullable)
    schema = problem.target_schema

    def run():
        return logical_relations(schema, mode=MODIFIED)

    tableaux = benchmark(run)
    benchmark.extra_info["n_nullable"] = n_nullable
    benchmark.extra_info["tableaux"] = len(tableaux)
    assert len(tableaux) == 2**n_nullable
