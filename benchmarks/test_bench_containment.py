"""Micro-benchmarks for the containment engine: writes ``BENCH_containment.json``.

Each benchmark times one workload of the chase-based semantic analyzer —
cold containment checks, warm (signature-cached) re-checks, program
minimization, and full differential verification — and collects the
``semantic.*`` counters of the run.  After the module finishes, the
collected numbers are serialized to ``BENCH_containment.json`` at the
repository root so counter totals (checks, cache hits, certificates) can be
diffed across revisions.  Run with::

    pytest benchmarks/test_bench_containment.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.semantic.containment import (
    ContainmentEngine,
    cq_from_rule,
    reset_default_engine,
)
from repro.analysis.semantic.minimize import minimize_program
from repro.analysis.semantic.verifier import verify_system
from repro.bench import stamp_metadata
from repro.core.pipeline import MappingSystem
from repro.obs import Tracer, use_tracer
from repro.scenarios import cars

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_containment.json"

_reports: dict[str, dict] = {}


def _rule_queries():
    """The tableau queries of the figure-1 and figure-10 transformations."""
    queries = []
    for problem in (cars.figure1_problem(), cars.figure10_problem()):
        program = MappingSystem(problem).query_result().program
        queries.extend(cq_from_rule(rule) for rule in program.rules)
    return queries


def _pairwise_containment(queries, engine):
    verdicts = 0
    for left in queries:
        for right in queries:
            if engine.contained_in(left, right) is not None:
                verdicts += 1
    return verdicts


@pytest.mark.parametrize("name", ["cold", "warm"])
def test_pairwise_containment(benchmark, name):
    """All-pairs rule containment: cold engine vs. signature-cache hits."""
    queries = _rule_queries()
    warm_engine = ContainmentEngine()
    if name == "warm":
        _pairwise_containment(queries, warm_engine)  # prime the cache

    def run():
        engine = warm_engine if name == "warm" else ContainmentEngine()
        with use_tracer(Tracer()) as tracer:
            verdicts = _pairwise_containment(queries, engine)
        return verdicts, dict(tracer.counters)

    verdicts, counters = benchmark(run)
    assert verdicts >= len(queries)  # reflexivity at the very least
    if name == "warm":
        assert counters.get("semantic.cache_hits", 0) > 0
    benchmark.extra_info["counters"] = counters
    _reports[f"pairwise-{name}"] = {
        "pairs": len(queries) ** 2,
        "verdicts": verdicts,
        "counters": counters,
    }


@pytest.mark.parametrize("name", ["figure-10", "figure-14"])
def test_minimize_program(benchmark, name):
    problem = {
        "figure-10": cars.figure10_problem,
        "figure-14": cars.figure14_problem,
    }[name]()
    program = MappingSystem(problem, optimize=False).query_result().program

    def run():
        reset_default_engine()
        with use_tracer(Tracer()) as tracer:
            result = minimize_program(program)
        return result, dict(tracer.counters)

    result, counters = benchmark(run)
    assert result.removed  # both scenarios have one provably redundant rule
    benchmark.extra_info["counters"] = counters
    _reports[f"minimize-{name}"] = {
        "rules": len(program.rules),
        "removed": len(result.removed),
        "counters": counters,
    }


@pytest.mark.parametrize("name", ["figure-1", "figure-12"])
def test_differential_verification(benchmark, name):
    problem = {
        "figure-1": cars.figure1_problem,
        "figure-12": cars.figure12_problem,
    }[name]()

    def run():
        reset_default_engine()
        system = MappingSystem(problem)
        with use_tracer(Tracer()) as tracer:
            report = verify_system(system)
        return report, dict(tracer.counters)

    report, counters = benchmark(run)
    assert report.ok
    benchmark.extra_info["counters"] = counters
    _reports[f"verify-{name}"] = {
        "checks": len(report.checks),
        "counters": counters,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_bench_report():
    """Serialize every collected report once the module's benchmarks ran."""
    yield
    if _reports:
        payload = {name: _reports[name] for name in sorted(_reports)}
        stamped = stamp_metadata(payload)
        OUTPUT_PATH.write_text(json.dumps(stamped, indent=2) + "\n")
