"""Appendix C: Examples C.1–C.4 (Figures 10–15)."""

from repro.core.pipeline import MappingSystem
from repro.model.instance import instance_from_dict
from repro.model.validation import validate_instance
from repro.model.values import is_labeled_null
from repro.scenarios import cars
from repro.scenarios.appendix_c import example_c4_problem


def test_c1_figure11(benchmark, cars3_source):
    """C.1: CARS3 -> CARS2a, a mandatory owner invented only when needed."""

    def run():
        return MappingSystem(cars.figure10_problem()).transform(cars3_source)

    output = benchmark(run)
    assert validate_instance(output).ok
    assert len(output.relation("P2a")) == 3  # 2 real + 1 invented (Figure 11)
    owners = {row[0]: row[2] for row in output.relation("C2a")}
    assert owners["c85"] == "p22"
    assert is_labeled_null(owners["c86"])


def test_c1_program_shape(benchmark):
    def run():
        return MappingSystem(cars.figure10_problem()).transformation

    program = benchmark(run)
    heads = sorted(r.head_relation for r in program.rules)
    # C.1's program: P2a x2 (copy + invented person), C2a x2, OCtmp; the
    # subsumed P2a <- O3,C3,P3 rule is optimized away.
    assert heads == ["C2a", "C2a", "OCtmp", "P2a", "P2a"]
    nested = [
        t
        for r in program.rules
        for t in r.head.terms
        if repr(t).count("(") >= 2
    ]
    assert nested  # the paper's nested f_n(f_p(c)) Skolem terms


def test_c2_figure13(benchmark):
    source = cars.figure13_source_instance()

    def run():
        return MappingSystem(cars.figure12_problem()).transform(source)

    output = benchmark(run)
    assert output == cars.figure13_expected_target()


def test_c3_figure15(benchmark):
    source = cars.figure15_source_instance()

    def run():
        return MappingSystem(cars.figure14_problem()).transform(source)

    output = benchmark(run)
    assert output == cars.figure15_expected_target()


def test_c4_resolution(benchmark):
    problem = example_c4_problem()
    source = instance_from_dict(
        problem.source_schema,
        {
            "S1": [(f"k{i}", f"a{i}", f"b{i}", f"c{i}") for i in range(8)],
            "S2": [(f"k{i}", f"x{i}", f"y{i}", f"z{i}") for i in range(4, 12)],
            "S3": [(f"k{i}", f"q{i}", f"r{i}", f"s{i}") for i in range(0, 12, 3)],
        },
    )

    def run():
        return MappingSystem(example_c4_problem()).transform(source)

    output = benchmark(run)
    assert validate_instance(output).ok
    assert len(output.relation("T")) == 12  # one tuple per key, fused correctly


def test_c4_program_shape(benchmark):
    def run():
        return MappingSystem(example_c4_problem()).transformation

    program = benchmark(run)
    t_rules = program.rules_for("T")
    # 3 rewritten originals + 4 fused mappings (C.4's seven T-rules).
    assert len(t_rules) == 7
    assert len(program.intermediates) == 3
