"""Figures 4–6 / Example 2.2: plain vs referenced-attribute correspondences."""

from repro.core.pipeline import MappingSystem
from repro.model.values import NULL, is_labeled_null
from repro.scenarios import cars


def test_figure5_plain_correspondences(benchmark, cars3_source):
    def run():
        return MappingSystem(cars.figure4_problem()).transform(cars3_source)

    output = benchmark(run)
    c1 = list(output.relation("C1"))
    invented_cars = [row for row in c1 if is_labeled_null(row[0])]
    benchmark.extra_info["invented_cars"] = len(invented_cars)
    # Figure 5: an invented car per person, plus the two real cars.
    assert len(invented_cars) == 2
    assert len(c1) == 4


def test_figure6_referenced_attribute(benchmark, cars3_source):
    def run():
        return MappingSystem(cars.figure4_ra_problem()).transform(cars3_source)

    output = benchmark(run)
    assert output == cars.figure6_expected_target()
    assert set(output.relation("C1").rows) == {
        ("c85", "Ferrari", "MJ"),
        ("c86", "Ford", NULL),
    }


def test_figure4_ra_schema_mapping(benchmark):
    def run():
        return MappingSystem(cars.figure4_ra_problem()).schema_mapping

    schema_mapping = benchmark(run)
    # Example 2.2 (cont.): two logical mappings, no person-only mapping.
    assert len(schema_mapping) == 2
