"""Benchmarks for the eval-matrix runner: writes ``BENCH_eval.json``.

One sweep of generated scenarios (seeds 0:12, the SQLite/duckdb leg gated
off so the timing set is identical on every machine) through the full
verification stack, recording per-engine wall-time totals plus the verdict
summary.  The totals land under the standard timing keys (``reference``,
``batch``, ``sqlite``, ``seconds``) so ``repro bench-diff`` picks them up
and CI can gate on eval-runner regressions like any other benchmark.  The
deterministic verdict counts are asserted here too: a perf run that also
changed semantics should fail loudly, not just drift.  Run with::

    pytest benchmarks/test_bench_eval.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import stamp_metadata
from repro.bench.evalmatrix import run_eval

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_eval.json"

#: Enough seeds that the per-engine totals clear the 1 ms bench-diff noise
#: floor, few enough that the sweep stays a couple of seconds.
SEEDS = range(12)

_reports: dict[str, dict] = {}


def test_eval_sweep(benchmark):
    """Sweep seeds 0:12 through generation, three engines and all certifiers."""
    matrix = benchmark.pedantic(
        lambda: run_eval(SEEDS, duckdb=False), rounds=1, iterations=1
    )
    summary = matrix.summary()
    assert summary["ok"] == len(SEEDS)
    assert summary["agreeing"] == summary["evaluated"] == len(SEEDS)
    assert summary["refuted"] == 0
    assert matrix.gate() == []

    engines: dict[str, float] = {}
    stages: dict[str, float] = {}
    for row in matrix.rows:
        for leg in ("reference", "batch", "sqlite"):
            engines[leg] = engines.get(leg, 0.0) + row.timings[leg]
        for stage in ("compile", "certify", "sqlcheck", "cost", "flow"):
            stages[stage] = stages.get(stage, 0.0) + row.timings[stage]
    benchmark.extra_info["summary"] = summary
    _reports["sweep-0-12"] = {
        "scenarios": summary["scenarios"],
        "agreeing": summary["agreeing"],
        "certify": summary["certify"],
        "sqlcheck": summary["sqlcheck"],
        "engines": {leg: round(total, 6) for leg, total in engines.items()},
        "stages": {stage: round(total, 6) for stage, total in stages.items()},
        "seconds": summary["seconds"],
    }


@pytest.fixture(scope="module", autouse=True)
def _write_bench_report():
    """Serialize every collected report once the module's benchmarks ran."""
    yield
    if _reports:
        payload = {name: _reports[name] for name in sorted(_reports)}
        stamped = stamp_metadata(payload)
        OUTPUT_PATH.write_text(json.dumps(stamped, indent=2) + "\n")
