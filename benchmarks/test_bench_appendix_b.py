"""Appendix B: the four skolemization strategies on examples B.1–B.5.

For each strategy the benchmark records the target sizes the paper tabulates
and asserts the appendix's conclusions: only All-Source-Or-Key-Vars is always
functional *and* universal; Source-Here-and-Ref-Vars gives the smallest
results.
"""

import pytest

from repro.core.query_generation import build_program, rewrite_to_unitary
from repro.core.skolem import (
    ALL_SOURCE_OR_KEY_VARS,
    ALL_SOURCE_VARS,
    SOURCE_AND_RHS_VARS,
    SOURCE_HERE_AND_REF_VARS,
    STRATEGIES,
)
from repro.core.skolem import skolemize_schema_mapping
from repro.datalog import evaluate
from repro.exchange import (
    canonical_universal_solution,
    is_universal_solution,
    measure_instance,
)
from repro.scenarios.appendix_b import ALL_SCENARIOS

#: Expected total target sizes per (example, strategy); the numbers printed
#: by Appendix B (with B.3/Source-and-RHS per the stated definition — see
#: EXPERIMENTS.md).
EXPECTED_SIZES = {
    ("B.1", ALL_SOURCE_VARS): 4,
    ("B.1", SOURCE_AND_RHS_VARS): 3,
    ("B.1", ALL_SOURCE_OR_KEY_VARS): 4,
    ("B.1", SOURCE_HERE_AND_REF_VARS): 3,
    ("B.2", ALL_SOURCE_VARS): 4,
    ("B.2", SOURCE_AND_RHS_VARS): 2,
    ("B.2", ALL_SOURCE_OR_KEY_VARS): 4,
    ("B.2", SOURCE_HERE_AND_REF_VARS): 2,
    ("B.3", ALL_SOURCE_VARS): 8,  # 4 students + 4 schools
    ("B.3", SOURCE_AND_RHS_VARS): 8,  # xpc includes id (paper prints 7)
    ("B.3", ALL_SOURCE_OR_KEY_VARS): 8,
    ("B.3", SOURCE_HERE_AND_REF_VARS): 6,  # 4 students + 2 schools
    ("B.4", ALL_SOURCE_VARS): 8,
    ("B.4", SOURCE_AND_RHS_VARS): 8,
    ("B.4", ALL_SOURCE_OR_KEY_VARS): 6,
    ("B.4", SOURCE_HERE_AND_REF_VARS): 6,
    ("B.5", ALL_SOURCE_VARS): 4,
    ("B.5", SOURCE_AND_RHS_VARS): 2,
    ("B.5", ALL_SOURCE_OR_KEY_VARS): 4,
    ("B.5", SOURCE_HERE_AND_REF_VARS): 2,
}


def _run(scenario, strategy):
    skolemized = skolemize_schema_mapping(
        list(scenario.schema_mapping), scenario.target_schema, strategy=strategy
    )
    program = build_program(
        rewrite_to_unitary(skolemized), scenario.source_schema, scenario.target_schema
    )
    return evaluate(program, scenario.source_instance).target


@pytest.mark.parametrize("name", sorted(ALL_SCENARIOS))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_appendix_b_strategy(benchmark, name, strategy):
    scenario_factory = ALL_SCENARIOS[name]

    def run():
        return _run(scenario_factory(), strategy)

    output = benchmark(run)
    size = output.total_size()
    benchmark.extra_info["target_size"] = size
    benchmark.extra_info["expected"] = EXPECTED_SIZES[(name, strategy)]
    assert size == EXPECTED_SIZES[(name, strategy)], (name, strategy)


def test_appendix_b_conclusion(benchmark):
    """Only All-Source-Or-Key-Vars is always functional and universal."""

    def run():
        verdicts = {}
        for name, factory in ALL_SCENARIOS.items():
            scenario = factory()
            canonical = canonical_universal_solution(
                scenario.schema_mapping, scenario.source_instance
            )
            for strategy in STRATEGIES:
                output = _run(scenario, strategy)
                functional = measure_instance(output).key_violations == 0
                universal = is_universal_solution(output, canonical)
                verdicts.setdefault(strategy, []).append((name, functional, universal))
        return verdicts

    verdicts = benchmark(run)
    asok = verdicts[ALL_SOURCE_OR_KEY_VARS]
    assert all(functional and universal for _n, functional, universal in asok)
    # Every other strategy fails at least one case.
    for strategy in (ALL_SOURCE_VARS, SOURCE_AND_RHS_VARS, SOURCE_HERE_AND_REF_VARS):
        assert any(
            not functional or not universal
            for _n, functional, universal in verdicts[strategy]
        ), strategy
