"""Ablations: what each novel ingredient buys.

* nullable-related + non-null-extension pruning vs subsumption/implication
  alone (mapping counts on exponential tableaux);
* skolemization strategy vs invented-value counts;
* key-conflict resolution vs raw unitary mappings (key violations).
"""

import pytest

from repro.core.candidates import generate_candidates
from repro.core.chase import MODIFIED, logical_relations
from repro.core.pipeline import MappingSystem
from repro.core.pruning import prune_candidates
from repro.core.query_generation import build_program, rewrite_to_unitary
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.datalog import evaluate
from repro.exchange.metrics import measure_instance
from repro.scenarios import cars
from repro.scenarios.synthetic import wide_problem


@pytest.mark.parametrize("n_nullable", [2, 4, 6])
def test_nullable_pruning_ablation(benchmark, n_nullable):
    """Without nullable pruning, candidates explode with 2**n tableaux."""
    problem = wide_problem(n_nullable)
    source = logical_relations(problem.source_schema, mode=MODIFIED)
    target = logical_relations(problem.target_schema, mode=MODIFIED)

    def run():
        pruned_on = generate_candidates(
            source, target, problem.correspondences, apply_nullable_pruning=True
        )
        pruned_off = generate_candidates(
            source, target, problem.correspondences, apply_nullable_pruning=False
        )
        return pruned_on, pruned_off

    pruned_on, pruned_off = benchmark(run)
    benchmark.extra_info["candidates_with_pruning"] = len(pruned_on.candidates)
    benchmark.extra_info["candidates_without"] = len(pruned_off.candidates)
    assert len(pruned_on.candidates) == 1
    assert len(pruned_off.candidates) == 2**n_nullable


def test_nonnull_extension_ablation(benchmark):
    """On Figure 1, disabling ≺-pruning leaves the undesirable S5 mapping."""
    problem = cars.figure1_problem()
    source = logical_relations(problem.source_schema, mode=MODIFIED)
    target = logical_relations(problem.target_schema, mode=MODIFIED)
    generation = generate_candidates(source, target, problem.correspondences)

    def run():
        with_rule = prune_candidates(generation.candidates, use_nonnull_extension=True)
        without_rule = prune_candidates(
            generation.candidates, use_nonnull_extension=False
        )
        return with_rule, without_rule

    with_rule, without_rule = benchmark(run)
    assert len(with_rule.kept) == 3
    assert len(without_rule.kept) == 4  # S5 survives


def test_conflict_resolution_ablation(benchmark, cars3_source):
    """Without step 3 of Algorithm 4, the target key is violated."""
    problem = cars.figure1_problem()
    schema_mapping = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    ).schema_mapping

    def run():
        skolemized = skolemize_schema_mapping(
            list(schema_mapping), problem.target_schema
        )
        unresolved = build_program(
            rewrite_to_unitary(skolemized),
            problem.source_schema,
            problem.target_schema,
        )
        return evaluate(unresolved, cars3_source).target

    output = benchmark(run)
    metrics = measure_instance(output)
    benchmark.extra_info["key_violations"] = metrics.key_violations
    # c85 appears with its owner and with null: exactly the defect the
    # resolution step removes.
    assert metrics.key_violations == 1

    resolved = MappingSystem(problem).transform(cars3_source)
    assert measure_instance(resolved).key_violations == 0


def test_rule_optimization_ablation(benchmark):
    """Subsumption-based rule elimination shrinks the emitted program."""
    problem = cars.figure10_problem()

    def run():
        unoptimized = MappingSystem(problem, optimize=False).transformation
        optimized = MappingSystem(problem, optimize=True).transformation
        return unoptimized, optimized

    unoptimized, optimized = benchmark(run)
    assert len(optimized.rules) < len(unoptimized.rules)
    benchmark.extra_info["rules_before"] = len(unoptimized.rules)
    benchmark.extra_info["rules_after"] = len(optimized.rules)
