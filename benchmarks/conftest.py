"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures/examples (asserting
the reproduced shape) while timing the pipeline stage it exercises; the
scaling/ablation benchmarks sweep the synthetic workloads of
``repro.scenarios.synthetic``.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import MappingProblem, MappingSystem
from repro.core.schema_mapping import BASIC, NOVEL


def fresh_system(problem: MappingProblem, algorithm: str = NOVEL) -> MappingSystem:
    return MappingSystem(problem, algorithm=algorithm)


def run_pipeline(problem_factory, source, algorithm=NOVEL):
    """Build the pipeline from scratch and transform: the full-cost path."""
    system = MappingSystem(problem_factory(), algorithm=algorithm)
    return system.transform(source)


@pytest.fixture
def cars3_source():
    from repro.scenarios.cars import cars3_source_instance

    return cars3_source_instance()
