"""Figures 7–9: the baseline walkthrough (section 3.2) and Example 4.1."""

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.model.values import is_labeled_null
from repro.scenarios import cars


def test_figure8_baseline_transformation(benchmark):
    source = cars.figure8_source_instance()

    def run():
        return MappingSystem(cars.figure7_problem(), algorithm=BASIC).transform(source)

    output = benchmark(run)
    assert output == cars.figure8_expected_target()


def test_figure7_baseline_schema_mapping(benchmark):
    def run():
        return MappingSystem(cars.figure7_problem(), algorithm=BASIC).schema_mapping

    schema_mapping = benchmark(run)
    # Section 3.2: P2a -> P3 and C2a,P2a -> O3,C3,P3.
    assert len(schema_mapping) == 2
    consequents = {tuple(a.relation for a in m.consequent) for m in schema_mapping}
    assert consequents == {("P3",), ("O3", "C3", "P3")}


def test_figure9_mandatory_names(benchmark, cars3_source):
    def run():
        return MappingSystem(cars.figure9_problem()).transform(cars3_source)

    output = benchmark(run)
    rows = {row[0]: row for row in output.relation("C1a")}
    # Example 4.1: names invented only for cars without a real owner.
    assert rows["c85"][2] == "MJ"
    assert is_labeled_null(rows["c86"][2])
    benchmark.extra_info["invented_names"] = sum(
        1 for row in rows.values() if is_labeled_null(row[2])
    )
