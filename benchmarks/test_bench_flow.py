"""Micro-benchmarks for the flow engine: writes ``BENCH_flow.json``.

Each benchmark solves the three shipped analyses (nullability, provenance,
key-origin) to fixpoint over one bundled scenario's generated program and
records the solver telemetry — iterations, position updates, widenings —
plus wall time.  After the module finishes, the collected numbers are
serialized to ``BENCH_flow.json`` at the repository root so solver behaviour
(sweep counts must stay at one per stratified program) can be diffed across
revisions.  Run with::

    pytest benchmarks/test_bench_flow.py --benchmark-only
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.flow import analyze_flow
from repro.bench import stamp_metadata
from repro.core.pipeline import MappingSystem
from repro.scenarios import bundled_problems

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_flow.json"

#: A small / medium / large spread of the bundled scenarios.
SCENARIOS = ("appendix-A.3", "figure-1", "figure-12", "appendix-c4")

_reports: dict[str, dict] = {}


@pytest.mark.parametrize("name", SCENARIOS)
def test_flow_fixpoint(benchmark, name):
    """Solve all three analyses over one scenario's generated program."""
    problem = bundled_problems()[name]
    program = MappingSystem(problem).transformation

    def run():
        started = time.perf_counter()
        report = analyze_flow(program, problem)
        return report, time.perf_counter() - started

    report, elapsed = benchmark(run)
    stats = report.stats()
    for analysis, numbers in stats.items():
        # The generated programs are stratified: the solver must reach the
        # fixpoint in a single sweep (one visit per defined relation).
        assert numbers["iterations"] == numbers["relations"], (analysis, numbers)
        assert numbers["widenings"] == 0, (analysis, numbers)
    benchmark.extra_info["stats"] = stats
    _reports[name] = {
        "rules": len(program.rules),
        "relations": len(program.defined_relations()),
        "diagnostics": [item.code for item in report.diagnostics],
        "wall_seconds": round(elapsed, 6),
        "solver": stats,
    }


def test_flow_full_sweep(benchmark):
    """Flow-analyze every bundled scenario back to back (the CI workload)."""
    problems = bundled_problems()
    programs = {
        name: MappingSystem(problem).transformation
        for name, problem in problems.items()
    }

    def run():
        iterations = 0
        findings = 0
        for name, program in programs.items():
            report = analyze_flow(program, problems[name])
            iterations += sum(r.stats.iterations for r in report.results)
            findings += len(report.diagnostics)
        return iterations, findings

    iterations, findings = benchmark(run)
    assert iterations > 0
    benchmark.extra_info["iterations"] = iterations
    _reports["all-scenarios"] = {
        "scenarios": len(programs),
        "iterations": iterations,
        "findings": findings,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_bench_report():
    """Serialize every collected report once the module's benchmarks ran."""
    yield
    if _reports:
        payload = {name: _reports[name] for name in sorted(_reports)}
        stamped = stamp_metadata(payload)
        OUTPUT_PATH.write_text(json.dumps(stamped, indent=2) + "\n")
