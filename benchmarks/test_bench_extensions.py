"""Benchmarks for the extension components: composite keys, matching,
certain answers, transformation analysis."""

from repro.core.matching import suggest_correspondences
from repro.core.pipeline import MappingSystem
from repro.exchange.analysis import analyze_transformation
from repro.exchange.queries import certain_answers, query
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.scenarios import cars
from repro.scenarios.composite import (
    enrollment_expected_target,
    enrollment_problem,
    enrollment_source_instance,
)
from repro.scenarios.synthetic import cars3_instance


def test_composite_key_consolidation(benchmark):
    source = enrollment_source_instance()

    def run():
        return MappingSystem(enrollment_problem()).transform(source)

    output = benchmark(run)
    assert output == enrollment_expected_target()


def test_matcher_on_cars_schemas(benchmark):
    from repro.scenarios.cars import cars2_schema, cars3_schema

    source, target = cars3_schema(), cars2_schema()

    def run():
        return suggest_correspondences(source, target)

    suggestions = benchmark(run)
    matched_targets = {repr(s.correspondence.target) for s in suggestions}
    assert {"P2.person", "P2.name", "P2.email", "C2.car", "C2.model"} <= matched_targets


def test_certain_answers_scaling(benchmark):
    system = MappingSystem(cars.figure1_problem())
    source = cars3_instance(n_persons=300, n_cars=600, seed=5)
    output = system.transform(source)
    c, m, p, n, e = (Variable(x) for x in "cmpne")
    owners = query(
        [c, n],
        RelationalAtom("C2", (c, m, p)),
        RelationalAtom("P2", (p, n, e)),
    )

    def run():
        return certain_answers(owners, output)

    answers = benchmark(run)
    assert len(answers) == len(source.relation("O3"))


def test_transformation_analysis(benchmark, cars3_source):
    system = MappingSystem(cars.figure1_problem())

    def run():
        return analyze_transformation(system, cars3_source)

    analysis = benchmark(run)
    assert analysis.is_canonical_null_policy
    assert analysis.is_universal


def test_publications_consolidation(benchmark):
    from repro.scenarios.publications import (
        digest_expected_target,
        digest_problem,
        pubs_source_instance,
    )

    source = pubs_source_instance()

    def run():
        return MappingSystem(digest_problem()).transform(source)

    output = benchmark(run)
    assert output == digest_expected_target()


def test_filtered_correspondence_pipeline(benchmark):
    from repro.core.pipeline import MappingProblem
    from repro.model.builder import SchemaBuilder
    from repro.model.instance import instance_from_dict

    source_schema = SchemaBuilder("s").relation("Emp", "id", "name", "dept").build()
    target_schema = SchemaBuilder("t").relation("ItStaff", "id", "name").build()
    source = instance_from_dict(
        source_schema,
        {"Emp": [(f"e{i}", f"name{i}", "it" if i % 3 else "hr") for i in range(300)]},
    )

    def run():
        problem = MappingProblem(source_schema, target_schema)
        problem.add_correspondence("Emp.id", "ItStaff.id")
        problem.add_correspondence("Emp.name", "ItStaff.name", where="Emp.dept = 'it'")
        return MappingSystem(problem).transform(source)

    output = benchmark(run)
    assert len(output.relation("ItStaff")) == 200
