"""Whole-pipeline benchmarks with telemetry: writes ``BENCH_pipeline.json``.

Each benchmark times an end-to-end traced pipeline run on one of the paper's
mapping problems and collects the resulting merged
:class:`repro.obs.RunReport`.  After the module finishes, every collected
report is serialized to ``BENCH_pipeline.json`` at the repository root, so a
CI job (or a curious reader) can diff counter totals — chase steps, prune
rule hits, conflicts, evaluated tuples — across revisions.  Run with::

    pytest benchmarks/test_bench_pipeline.py --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import stamp_metadata
from repro.core.pipeline import MappingSystem
from repro.scenarios import cars
from repro.scenarios.appendix_c import example_6_7_problem

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_pipeline.json"

#: scenario name -> (problem factory, source instance factory or None)
SCENARIOS = {
    "figure1": (cars.figure1_problem, cars.cars3_source_instance),
    "figure9": (cars.figure9_problem, None),
    "figure12": (cars.figure12_problem, cars.figure13_source_instance),
    "figure14": (cars.figure14_problem, cars.figure15_source_instance),
    "example6.7": (example_6_7_problem, None),
}

_reports: dict[str, dict] = {}


def _traced_run(problem_factory, source_factory):
    system = MappingSystem(problem_factory(), trace=True)
    if source_factory is not None:
        system.transform(source_factory())
    else:
        system.transformation  # force both generation stages
    return system.stats()


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_pipeline_with_telemetry(benchmark, name):
    problem_factory, source_factory = SCENARIOS[name]
    report = benchmark(_traced_run, problem_factory, source_factory)
    assert report.counters["chase.steps"] > 0
    assert report.counters["qgen.rules"] > 0
    benchmark.extra_info["counters"] = dict(report.counters)
    _reports[name] = report.to_dict()


@pytest.fixture(scope="module", autouse=True)
def _write_bench_report():
    """Serialize every collected report once the module's benchmarks ran."""
    yield
    if _reports:
        payload = {name: _reports[name] for name in sorted(_reports)}
        stamped = stamp_metadata(payload)
        OUTPUT_PATH.write_text(json.dumps(stamped, indent=2) + "\n")
