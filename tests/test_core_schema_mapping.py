"""End-to-end tests for schema-mapping generation (Algorithms 1 and 3)."""

import pytest

from repro.core.schema_mapping import BASIC, NOVEL, generate_schema_mapping
from repro.errors import MappingGenerationError
from repro.scenarios import cars
from repro.scenarios.appendix_a import ALL_EXAMPLES, EXPECTED_MAPPINGS


def _mapping_shapes(schema_mapping):
    return {
        (
            tuple(a.relation for a in m.premise.atoms),
            tuple(a.relation for a in m.consequent),
            len(m.premise.null_vars),
            len(m.premise.nonnull_vars),
        )
        for m in schema_mapping
    }


class TestFigure1:
    def test_novel_schema_mapping(self, figure1_problem):
        result = generate_schema_mapping(
            figure1_problem.source_schema,
            figure1_problem.target_schema,
            figure1_problem.correspondences,
            algorithm=NOVEL,
        )
        assert _mapping_shapes(result.schema_mapping) == {
            (("P3",), ("P2",), 0, 0),
            (("C3",), ("C2",), 0, 0),
            (("O3", "C3", "P3"), ("C2", "P2"), 0, 0),
        }

    def test_basic_schema_mapping_has_undesirable_third(self, figure1_problem):
        result = generate_schema_mapping(
            figure1_problem.source_schema,
            figure1_problem.target_schema,
            figure1_problem.correspondences,
            algorithm=BASIC,
        )
        # Basic: C3 -> C2, P2 ("each car has an owner" — section 2).
        assert (("C3",), ("C2", "P2"), 0, 0) in _mapping_shapes(result.schema_mapping)

    def test_covered_correspondences_shared_into_consequent(self, figure1_problem):
        result = generate_schema_mapping(
            figure1_problem.source_schema,
            figure1_problem.target_schema,
            figure1_problem.correspondences,
        )
        joined = result.schema_mapping.mappings[-1]
        # In O3,C3,P3 -> C2,P2 the C2.person term is the O3.person variable.
        o3_person = joined.premise.atoms[0].terms[1]
        c2_person = joined.consequent[0].terms[2]
        assert o3_person is c2_person

    def test_report_details(self, figure1_problem):
        result = generate_schema_mapping(
            figure1_problem.source_schema,
            figure1_problem.target_schema,
            figure1_problem.correspondences,
        )
        report = result.report
        assert report.skeleton_count == 9
        assert len(report.source_tableaux) == 3
        assert len(report.target_tableaux) == 3
        assert len(report.kept) == 3
        assert report.pruned_by_rule("subsumption")
        assert report.pruned_by_rule("nonnull-extension")


class TestFigure4:
    def test_plain_correspondences_keep_person_mapping(self):
        problem = cars.figure4_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        shapes = _mapping_shapes(result.schema_mapping)
        assert (("P3",), ("C1",), 0, 0) in shapes  # invented car per person
        assert len(result.schema_mapping) == 3

    def test_ra_correspondence_drops_person_mapping(self):
        problem = cars.figure4_ra_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        shapes = _mapping_shapes(result.schema_mapping)
        assert len(result.schema_mapping) == 2
        assert not any(premise == (("P3",),) for premise, *_ in shapes)


class TestFigure9:
    def test_example_4_1_schema_mapping(self):
        problem = cars.figure9_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        assert _mapping_shapes(result.schema_mapping) == {
            (("C3",), ("C1a",), 0, 0),
            (("O3", "C3", "P3"), ("C1a",), 0, 0),
        }


class TestFigure7Basic:
    def test_section_3_2_walkthrough(self):
        problem = cars.figure7_problem()
        result = generate_schema_mapping(
            problem.source_schema,
            problem.target_schema,
            problem.correspondences,
            algorithm=BASIC,
        )
        assert _mapping_shapes(result.schema_mapping) == {
            (("P2a",), ("P3",), 0, 0),
            (("C2a", "P2a"), ("O3", "C3", "P3"), 0, 0),
        }


class TestFigure12:
    def test_example_c2_schema_mapping(self):
        problem = cars.figure12_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        assert len(result.schema_mapping) == 3
        premises = {tuple(a.relation for a in m.premise.atoms) for m in result.schema_mapping}
        assert premises == {("C4",), ("O4", "C4", "P4"), ("D4", "C4", "P4")}

    def test_sixteen_skeletons(self):
        problem = cars.figure12_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        assert result.report.skeleton_count == 16


class TestFigure14:
    def test_example_c3_source_conditions(self):
        problem = cars.figure14_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        assert _mapping_shapes(result.schema_mapping) == {
            (("P2",), ("P3",), 0, 0),
            (("C2",), ("C3",), 1, 0),  # premise carries p = null
            (("C2", "P2"), ("O3", "C3", "P3"), 0, 1),  # premise carries p != null
        }


class TestAppendixA:
    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_expected_mapping_count(self, name):
        problem = ALL_EXAMPLES[name]()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        assert len(result.schema_mapping) == EXPECTED_MAPPINGS[name], name

    def test_a7_splits_on_source_null(self):
        problem = ALL_EXAMPLES["A.7"]()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        conditions = sorted(
            (len(m.premise.null_vars), len(m.premise.nonnull_vars))
            for m in result.schema_mapping
        )
        assert conditions == [(0, 1), (1, 0)]

    def test_a9_keeps_matching_polarities(self):
        problem = ALL_EXAMPLES["A.9"]()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        # null source -> null target, non-null source -> non-null target.
        for mapping in result.schema_mapping:
            if mapping.premise.null_vars:
                # The email correspondence is not covered: the target email
                # variable stays existential.
                assert len(mapping.existential_variables()) == 1
            else:
                assert not mapping.existential_variables()


def test_unknown_algorithm_rejected(figure1_problem):
    with pytest.raises(MappingGenerationError):
        generate_schema_mapping(
            figure1_problem.source_schema,
            figure1_problem.target_schema,
            figure1_problem.correspondences,
            algorithm="mystery",
        )


def test_labels_are_sequential(figure1_problem):
    result = generate_schema_mapping(
        figure1_problem.source_schema,
        figure1_problem.target_schema,
        figure1_problem.correspondences,
    )
    assert [m.label for m in result.schema_mapping] == ["m1", "m2", "m3"]
