"""Tests for the functionality check (Algorithm 4, step 2)."""

import pytest

from repro.core.functionality import (
    assert_all_functional,
    check_functionality,
    rename_unitary,
)
from repro.core.query_generation import generate_queries, rewrite_to_unitary
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.errors import NonFunctionalMappingError
from repro.core.pipeline import MappingProblem
from repro.model.builder import SchemaBuilder
from repro.scenarios import cars


def _unitary_mappings(problem):
    result = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    )
    skolemized = skolemize_schema_mapping(
        list(result.schema_mapping), problem.target_schema
    )
    return problem, rewrite_to_unitary(skolemized)


class TestExampleC1:
    """Example C.1 / 6.2: every unitary mapping of Figure 10 is functional."""

    def test_all_functional(self):
        problem, unitary = _unitary_mappings(cars.figure10_problem())
        for mapping in unitary:
            assert (
                check_functionality(
                    mapping, problem.source_schema, problem.target_schema
                )
                is None
            ), repr(mapping)

    def test_assert_all_functional_passes(self):
        problem, unitary = _unitary_mappings(cars.figure10_problem())
        assert_all_functional(unitary, problem.source_schema, problem.target_schema)


class TestNonFunctionalDetection:
    def _many_owners_problem(self):
        """A car may have many owners: O.car is NOT a key of O."""
        source = (
            SchemaBuilder("src")
            .relation("C", "car", "model")
            .relation("O", "oid", "car", "person")
            .foreign_key("O", "car", "C")
            .build()
        )
        target = (
            SchemaBuilder("tgt")
            .relation("T", "car", "model", "person")
            .build()
        )
        problem = MappingProblem(source, target)
        problem.add_correspondence("C.car", "T.car")
        problem.add_correspondence("C.model", "T.model")
        problem.add_correspondence("O.person", "T.person")
        return problem

    def test_example_6_2_negative_case(self):
        # "That mapping would not be functional if a car could have more than
        # one owner."
        problem = self._many_owners_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        skolemized = skolemize_schema_mapping(
            list(result.schema_mapping), problem.target_schema
        )
        unitary = rewrite_to_unitary(skolemized)
        offending = [
            check_functionality(m, problem.source_schema, problem.target_schema)
            for m in unitary
        ]
        violations = [v for v in offending if v is not None]
        assert violations
        assert violations[0].attribute == "person"
        assert "person" in str(violations[0])

    def test_query_generation_signals_error(self):
        problem = self._many_owners_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        with pytest.raises(NonFunctionalMappingError):
            generate_queries(result.schema_mapping)


class TestRenaming:
    def test_rename_unitary_is_fresh(self):
        problem, unitary = _unitary_mappings(cars.figure10_problem())
        original = unitary[0]
        renamed = rename_unitary(original)
        original_vars = set(original.premise.variables())
        renamed_vars = set(renamed.premise.variables())
        assert not (original_vars & renamed_vars)
        assert renamed.consequent.relation == original.consequent.relation

    def test_rename_preserves_conditions(self):
        problem, unitary = _unitary_mappings(cars.figure14_problem())
        with_null = next(m for m in unitary if m.premise.null_vars)
        renamed = rename_unitary(with_null)
        assert len(renamed.premise.null_vars) == len(with_null.premise.null_vars)
        assert renamed.premise.null_vars[0] is not with_null.premise.null_vars[0]


class TestSkolemizedHeads:
    def test_functor_heads_are_functional(self):
        # C.1's second mapping: P2a(f_p(c), f_n(f_p(c)), f_e(f_p(c))).
        problem, unitary = _unitary_mappings(cars.figure10_problem())
        invented = [
            m
            for m in unitary
            if m.consequent.relation == "P2a"
            and not m.consequent.terms[0].__class__.__name__ == "Variable"
        ]
        assert invented  # the C3 -> P2a mapping exists
        for mapping in invented:
            assert (
                check_functionality(
                    mapping, problem.source_schema, problem.target_schema
                )
                is None
            )
