"""Tests for the flow engine's client analyses and ``FLW*`` diagnostics."""

from __future__ import annotations

import pytest

from repro.analysis import SourceSpan
from repro.analysis.flow import (
    DET,
    MAYBE,
    NO,
    OPEN,
    SKEY,
    YES,
    KeyOriginAnalysis,
    NullabilityAnalysis,
    ProvenanceAnalysis,
    analyze_flow,
    flow_diagnostics,
    functionality_records,
    rule_term_status,
    solve,
)
from repro.analysis.flow.lattice import BOTTOM
from repro.analysis.flow.provenance import (
    CONST_ORIGIN,
    NULL_ORIGIN,
    format_origin,
    skolem_origin,
    source_origin,
)
from repro.core.pipeline import MappingProblem, MappingSystem
from repro.datalog.program import DatalogProgram, Rule
from repro.dsl.parser import parse_problem
from repro.logic.atoms import Equality, RelationalAtom
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder


def V(name):
    return Variable(name)


def schema(name, *relations, fks=()):
    builder = SchemaBuilder(name)
    for rel, attrs, key in relations:
        builder.relation(rel, *attrs, key=key)
    for rel, attr, referenced in fks:
        builder.foreign_key(rel, attr, referenced)
    return builder.build(validate=False)


# -- nullability -----------------------------------------------------------


class TestRuleTermStatus:
    def _solved(self, program):
        return solve(program, NullabilityAnalysis(program))

    def _program(self, rule, source=None, target=None):
        return DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )

    def test_fixed_terms(self):
        x = V("x")
        rule = Rule(
            RelationalAtom("T", (NULL_TERM, Constant("c"), SkolemTerm("f", (x,)))),
            (RelationalAtom("R", (x,)),),
        )
        env = self._solved(self._program(rule)).env
        assert rule_term_status(NULL_TERM, rule, env) == YES
        assert rule_term_status(Constant("c"), rule, env) == NO
        assert rule_term_status(SkolemTerm("f", (x,)), rule, env) == NO

    def test_rule_conditions_override_positions(self):
        x, y, z, w = V("x"), V("y"), V("z"), V("w")
        rule = Rule(
            RelationalAtom("T", (x, y, z, w)),
            (RelationalAtom("R", (x, y, z, w)),),
            nonnull_vars=(x,),
            null_vars=(y,),
            equalities=(Equality(z, Constant("k")),),
        )
        env = self._solved(self._program(rule)).env
        assert rule_term_status(x, rule, env) == NO
        assert rule_term_status(y, rule, env) == YES
        assert rule_term_status(z, rule, env) == NO  # equated to a constant
        assert rule_term_status(w, rule, env) == MAYBE  # opaque R: unknown

    def test_variable_meets_over_bound_positions(self):
        source = schema(
            "s",
            ("R", ("a", "b?"), "a"),
            ("Q", ("c",), "c"),
        )
        x, y = V("x"), V("y")
        # y is bound at a nullable R position AND a mandatory Q position:
        # the join over rows satisfying both is non-null.
        rule = Rule(
            RelationalAtom("T", (x, y)),
            (RelationalAtom("R", (x, y)), RelationalAtom("Q", (y,))),
        )
        program = self._program(rule, source=source)
        env = self._solved(program).env
        assert rule_term_status(x, rule, env) == NO
        assert rule_term_status(y, rule, env) == NO

    def test_contradictory_binding_is_bottom_and_rule_derives_nothing(self):
        source = schema("s", ("R", ("a",), "a"))
        x = V("x")
        rule = Rule(
            RelationalAtom("T", (x,)),
            (RelationalAtom("R", (x,)),),
            null_vars=(x,),
        )
        # x = null over a mandatory source column: no binding exists.  The
        # per-term status via conditions is YES, but the analysis' transfer
        # must notice the meet with the position is BOTTOM.
        program = self._program(rule, source=source)
        analysis = NullabilityAnalysis(program)
        result = solve(program, analysis)
        # rule_term_status answers per the rule conditions first:
        assert rule_term_status(x, rule, result.env) == YES
        # ... and the solved state still reports what flows into T.
        assert result.value("T", 0) == YES


class TestNullabilitySeeds:
    def test_schema_seed_and_opaque_seed(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        program = DatalogProgram(rules=[], source_schema=source)
        analysis = NullabilityAnalysis(program)
        assert analysis.seed("R", 0) == NO
        assert analysis.seed("R", 1) == MAYBE
        assert analysis.seed("Mystery", 0) == MAYBE


# -- provenance ------------------------------------------------------------


class TestProvenance:
    def test_seed_origins(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        program = DatalogProgram(rules=[], source_schema=source)
        analysis = ProvenanceAnalysis(program)
        assert analysis.seed("R", 0) == {source_origin("R", "a")}
        assert analysis.seed("R", 1) == {source_origin("R", "b"), NULL_ORIGIN}
        assert analysis.seed("Mystery", 0) == {("extern", "Mystery")}

    def test_term_origins_through_transfer(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        x, y = V("x"), V("y")
        rule = Rule(
            RelationalAtom(
                "T",
                (x, y, SkolemTerm("f", (x,)), Constant("c"), NULL_TERM),
            ),
            (RelationalAtom("R", (x, y)),),
        )
        program = DatalogProgram(rules=[rule], source_schema=source)
        result = solve(program, ProvenanceAnalysis(program))
        assert result.value("T", 0) == {source_origin("R", "a")}
        assert result.value("T", 1) == {source_origin("R", "b"), NULL_ORIGIN}
        assert result.value("T", 2) == {skolem_origin("f")}
        assert result.value("T", 3) == {CONST_ORIGIN}
        assert result.value("T", 4) == {NULL_ORIGIN}

    def test_nonnull_condition_filters_the_null_origin(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        x, y = V("x"), V("y")
        rule = Rule(
            RelationalAtom("T", (y,)),
            (RelationalAtom("R", (x, y)),),
            nonnull_vars=(y,),
        )
        program = DatalogProgram(rules=[rule], source_schema=source)
        result = solve(program, ProvenanceAnalysis(program))
        assert result.value("T", 0) == {source_origin("R", "b")}

    def test_null_condition_keeps_only_the_null_origin(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        x, y = V("x"), V("y")
        rule = Rule(
            RelationalAtom("T", (x, y)),
            (RelationalAtom("R", (x, y)),),
            null_vars=(y,),
        )
        program = DatalogProgram(rules=[rule], source_schema=source)
        result = solve(program, ProvenanceAnalysis(program))
        assert result.value("T", 1) == {NULL_ORIGIN}

    def test_format_origin(self):
        assert format_origin(source_origin("R", "a")) == "R.a"
        assert format_origin(skolem_origin("f")) == "f(...)"
        assert format_origin(("extern", "X")) == "extern:X"
        assert format_origin(NULL_ORIGIN) == "null"
        assert format_origin(CONST_ORIGIN) == "const"


# -- key origin ------------------------------------------------------------


class TestKeyOrigin:
    def test_seed_grades(self):
        source = schema(
            "s",
            ("P", ("p", "name"), "p"),
            ("O", ("car", "person", "note?"), "car"),
            fks=[("O", "person", "P")],
        )
        program = DatalogProgram(rules=[], source_schema=source)
        analysis = KeyOriginAnalysis(program)
        assert analysis.seed("P", 0) == SKEY  # the key itself
        assert analysis.seed("P", 1) == DET  # determined by P's key
        assert analysis.seed("O", 1) == SKEY  # mandatory FK to a simple key
        assert analysis.seed("Mystery", 0) == OPEN

    def test_nullable_fk_is_not_key_grade(self):
        source = schema(
            "s",
            ("P", ("p",), "p"),
            ("O", ("car", "person?"), "car"),
            fks=[("O", "person", "P")],
        )
        program = DatalogProgram(rules=[], source_schema=source)
        assert KeyOriginAnalysis(program).seed("O", 1) == DET

    def test_skolem_of_determined_arguments_is_key_grade(self):
        source = schema("s", ("R", ("a", "b"), "a"))
        x, y, z = V("x"), V("y"), V("z")
        rule = Rule(
            RelationalAtom(
                "T", (SkolemTerm("f", (x, y)), SkolemTerm("g", (z,)))
            ),
            (RelationalAtom("R", (x, y)), RelationalAtom("Q", (z,))),
        )
        program = DatalogProgram(rules=[rule], source_schema=source)
        result = solve(program, KeyOriginAnalysis(program))
        assert result.value("T", 0) == SKEY  # f of determined values
        assert result.value("T", 1) == OPEN  # g of an opaque-bound variable


class TestFunctionality:
    def _program(self, rules, source, target):
        return DatalogProgram(
            rules=rules, source_schema=source, target_schema=target
        )

    def test_key_determines_row_is_confirmed(self):
        source = schema("s", ("R", ("a", "b"), "a"))
        target = schema("t", ("T", ("a", "b"), "a"))
        x, y = V("x"), V("y")
        rule = Rule(
            RelationalAtom("T", (x, y)), (RelationalAtom("R", (x, y)),)
        )
        records = functionality_records(self._program([rule], source, target))
        assert len(records) == 1
        assert records[0].confirmed
        assert records[0].relation == "T"
        assert records[0].undetermined == ()

    def test_unconnected_join_is_not_confirmed(self):
        source = schema("s", ("R", ("a",), "a"), ("Q", ("b",), "b"))
        target = schema("t", ("T", ("a", "c"), "a"))
        x, y = V("x"), V("y")
        # T's key is x (from R); y ranges over all of Q — the rule is a
        # cartesian product, so T.c is NOT a function of T.a.
        rule = Rule(
            RelationalAtom("T", (x, y)),
            (RelationalAtom("R", (x,)), RelationalAtom("Q", (y,))),
        )
        records = functionality_records(self._program([rule], source, target))
        assert len(records) == 1
        assert not records[0].confirmed
        assert records[0].undetermined == ("c",)

    def test_skolem_key_term_determines_its_arguments(self):
        source = schema("s", ("R", ("a", "b"), "a"))
        target = schema("t", ("T", ("k", "b"), "k"))
        x, y = V("x"), V("y")
        # Key term f(x): Skolem injectivity determines x, and R's key -> row
        # FD then determines y.
        rule = Rule(
            RelationalAtom("T", (SkolemTerm("f", (x,)), y)),
            (RelationalAtom("R", (x, y)),),
        )
        records = functionality_records(self._program([rule], source, target))
        assert records[0].confirmed

    def test_equalities_propagate_determination(self):
        source = schema("s", ("R", ("a",), "a"), ("Q", ("b", "c"), "b"))
        target = schema("t", ("T", ("a", "c"), "a"))
        x, y, z = V("x"), V("y"), V("z")
        # x = y links the two atoms: Q's key is determined via the equality.
        rule = Rule(
            RelationalAtom("T", (x, z)),
            (RelationalAtom("R", (x,)), RelationalAtom("Q", (y, z))),
            equalities=(Equality(x, y),),
        )
        records = functionality_records(self._program([rule], source, target))
        assert records[0].confirmed

    def test_intermediate_rules_are_skipped(self):
        target = schema("t", ("T", ("a",), "a"))
        x = V("x")
        program = DatalogProgram(
            rules=[
                Rule(RelationalAtom("Ttmp", (x,)), (RelationalAtom("S", (x,)),)),
                Rule(RelationalAtom("T", (x,)), (RelationalAtom("Ttmp", (x,)),)),
            ],
            target_schema=target,
            intermediates={"Ttmp": 1},
        )
        records = functionality_records(program)
        assert [record.relation for record in records] == ["T"]


# -- FLW diagnostics -------------------------------------------------------


class TestFLW001:
    def _problem_and_program(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        target = schema("t", ("T", ("a", "c?"), "a"))
        problem = MappingProblem(source, target, name="dead-corr")
        problem.add_correspondence("R.a", "T.a")
        corr = problem.add_correspondence(
            "R.b", "T.c", span=SourceSpan(12, file="p.txt")
        )
        x, y = V("x"), V("y")
        # The generated-rule shape for a null-coverage column: the only rule
        # feeding T.c fires under y = null, so only null ever arrives.
        rule = Rule(
            RelationalAtom("T", (x, y)),
            (RelationalAtom("R", (x, y)),),
            null_vars=(y,),
        )
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        return problem, program, corr

    def test_dead_correspondence_is_flagged_with_its_span(self):
        problem, program, corr = self._problem_and_program()
        found = flow_diagnostics(program, problem)
        flw001 = [item for item in found if item.code == "FLW001"]
        assert len(flw001) == 1
        assert "T.c" in flw001[0].message
        assert "only null" in flw001[0].message
        assert flw001[0].span is corr.span  # satellite: spans are threaded

    def test_without_problem_no_flw001(self):
        _, program, _ = self._problem_and_program()
        found = flow_diagnostics(program)  # no correspondence targets known
        assert not [item for item in found if item.code == "FLW001"]

    def test_live_correspondence_is_not_flagged(self):
        source = schema("s", ("R", ("a", "b?"), "a"))
        target = schema("t", ("T", ("a", "c?"), "a"))
        problem = MappingProblem(source, target, name="live-corr")
        problem.add_correspondence("R.a", "T.a")
        problem.add_correspondence("R.b", "T.c")
        x, y = V("x"), V("y")
        rule = Rule(RelationalAtom("T", (x, y)), (RelationalAtom("R", (x, y)),))
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        assert not [
            item
            for item in flow_diagnostics(program, problem)
            if item.code == "FLW001"
        ]


class TestFLW002:
    def test_skolem_only_mandatory_column_is_flagged(self):
        source = schema("s", ("R", ("a",), "a"))
        target = schema("t", ("T", ("a", "b"), "a"))
        x = V("x")
        rule = Rule(
            RelationalAtom("T", (x, SkolemTerm("f_b", (x,)))),
            (RelationalAtom("R", (x,)),),
        )
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        found = flow_diagnostics(program)
        flw002 = [item for item in found if item.code == "FLW002"]
        assert len(flw002) == 1
        assert "T.b" in flw002[0].message
        assert "f_b" in flw002[0].message

    def test_key_positions_are_exempt(self):
        # Skolem-valued keys are the paper's bread and butter (§5.1): a
        # surrogate key is supposed to be invented.
        source = schema("s", ("R", ("a",), "a"))
        target = schema("t", ("T", ("k", "a"), "k"))
        x = V("x")
        rule = Rule(
            RelationalAtom("T", (SkolemTerm("f", (x,)), x)),
            (RelationalAtom("R", (x,)),),
        )
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        assert not flow_diagnostics(program)

    def test_mixed_origins_are_not_flagged(self):
        source = schema("s", ("R", ("a", "b"), "a"))
        target = schema("t", ("T", ("a", "b"), "a"))
        x, y = V("x"), V("y")
        rules = [
            Rule(RelationalAtom("T", (x, y)), (RelationalAtom("R", (x, y)),)),
            Rule(
                RelationalAtom("T", (x, SkolemTerm("f", (x,)))),
                (RelationalAtom("R", (x, y)),),
            ),
        ]
        program = DatalogProgram(
            rules=rules, source_schema=source, target_schema=target
        )
        assert not [
            item for item in flow_diagnostics(program) if item.code == "FLW002"
        ]


class TestFLW003:
    def test_unconfirmed_functionality_is_flagged(self):
        source = schema("s", ("R", ("a",), "a"), ("Q", ("b",), "b"))
        target = schema("t", ("T", ("a", "c"), "a"))
        x, y = V("x"), V("y")
        rule = Rule(
            RelationalAtom("T", (x, y)),
            (RelationalAtom("R", (x,)), RelationalAtom("Q", (y,))),
        )
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        found = flow_diagnostics(program)
        flw003 = [item for item in found if item.code == "FLW003"]
        assert len(flw003) == 1
        assert "T.{c}" in flw003[0].message
        assert "not statically confirmed" in flw003[0].message

    def test_all_bundled_scenarios_are_confirmed(self):
        # Algorithm 4's dynamic check passes on every bundled scenario; the
        # static closure must agree (it is sound, and here also complete).
        from repro.scenarios import bundled_problems

        for name, problem in bundled_problems().items():
            program = MappingSystem(problem).transformation
            for record in functionality_records(program):
                assert record.confirmed, (name, record)


# -- end to end over the pipeline ------------------------------------------


class TestPipelineIntegration:
    def test_flow_report_cached_on_the_system(self):
        from repro.scenarios import bundled_problems

        system = MappingSystem(bundled_problems()["figure-1"])
        report = system.flow_report()
        assert report is system.flow_report()  # cached
        assert set(report.states()) == {"nullability", "provenance", "keyorigin"}

    def test_compile_flow_appends_flw_diagnostics(self):
        from repro.scenarios import bundled_problems

        problem = bundled_problems()["appendix-A.3"]
        system = MappingSystem(problem)
        system.compile(flow=True)  # strict: FLW findings are warnings
        assert "FLW002" in system.lint_report.codes()

    def test_dsl_spans_reach_flw_findings(self):
        text = (
            "source schema S:\n"
            "  relation R (a key)\n"
            "target schema T:\n"
            "  relation P (a key, b)\n"
            "correspondences:\n"
            "  R.a -> P.a\n"
        )
        problem = parse_problem(text, file="uncovered.txt")
        program = MappingSystem(problem).transformation
        found = flow_diagnostics(program, problem)
        flw002 = [item for item in found if item.code == "FLW002"]
        assert len(flw002) == 1
        span = flw002[0].span
        assert span is not None
        assert span.file == "uncovered.txt"
        assert span.line == 4  # the declaration line of P (and of P.b)
        assert "uncovered.txt:4" in flw002[0].render()

    def test_figure_1_flow_states(self):
        from repro.scenarios import bundled_problems

        problem = bundled_problems()["figure-1"]
        report = MappingSystem(problem).flow_report()
        nullability = report.states()["nullability"]
        # C2.person is the nullable FK column Figure 1 is famous for.
        assert nullability["C2"] == [NO, NO, MAYBE]
        assert all(value != BOTTOM for row in nullability.values() for value in row)
        assert not report.diagnostics
        assert all(record.confirmed for record in report.functionality)
