"""Tests for the flow engine's lattices and fixpoint solver."""

from __future__ import annotations

import pytest

from repro.analysis.flow import (
    BOTTOM,
    DET,
    MAYBE,
    NO,
    OPEN,
    SKEY,
    YES,
    Environment,
    FlowError,
    NullabilityLattice,
    RankedLattice,
    SetLattice,
    solve,
)
from repro.analysis.flow.lattice import Lattice
from repro.analysis.flow.solver import (
    MAX_VISITS_PER_RELATION,
    FlowResult,
    evaluation_order,
)
from repro.datalog.program import DatalogProgram, Rule
from repro.errors import ReproError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable


def V(name):
    return Variable(name)


# -- lattices --------------------------------------------------------------


class TestNullabilityLattice:
    lattice = NullabilityLattice()

    def test_bottom(self):
        assert self.lattice.bottom() == BOTTOM

    def test_join_table(self):
        join = self.lattice.join
        assert join(BOTTOM, NO) == NO
        assert join(YES, BOTTOM) == YES
        assert join(NO, NO) == NO
        assert join(NO, YES) == MAYBE
        assert join(YES, MAYBE) == MAYBE
        assert join(MAYBE, NO) == MAYBE

    def test_leq_is_the_diamond_order(self):
        leq = self.lattice.leq
        for value in (BOTTOM, NO, YES, MAYBE):
            assert leq(BOTTOM, value)
            assert leq(value, MAYBE)
            assert leq(value, value)
        assert not leq(NO, YES)
        assert not leq(YES, NO)
        assert not leq(MAYBE, NO)

    def test_meet_table(self):
        meet = self.lattice.meet
        assert meet(MAYBE, NO) == NO
        assert meet(YES, MAYBE) == YES
        assert meet(NO, YES) == BOTTOM
        assert meet(NO, BOTTOM) == BOTTOM
        assert meet(NO, NO) == NO

    def test_join_all(self):
        assert self.lattice.join_all([]) == BOTTOM
        assert self.lattice.join_all([NO, NO]) == NO
        assert self.lattice.join_all([NO, YES]) == MAYBE


class TestSetLattice:
    def test_join_and_leq(self):
        lattice = SetLattice()
        a, b = frozenset({1}), frozenset({2})
        assert lattice.bottom() == frozenset()
        assert lattice.join(a, b) == {1, 2}
        assert lattice.leq(a, a | b)
        assert not lattice.leq(a | b, a)

    def test_default_widen_is_join(self):
        lattice = SetLattice()
        assert lattice.widen(frozenset({1}), frozenset({2})) == {1, 2}

    def test_universe_widen_jumps_to_top(self):
        universe = frozenset({1, 2, 3})
        lattice = SetLattice(universe=universe)
        assert lattice.widen(frozenset({1}), frozenset({1, 2})) == universe
        # No change: widening must not overshoot a reached fixpoint.
        assert lattice.widen(frozenset({1}), frozenset({1})) == {1}

    def test_format_is_sorted(self):
        lattice = SetLattice()
        assert lattice.format(frozenset({"b", "a"})) == "{a, b}"


class TestRankedLattice:
    def test_chain_order(self):
        lattice = RankedLattice((BOTTOM, SKEY, DET, OPEN))
        assert lattice.bottom() == BOTTOM
        assert lattice.join(SKEY, DET) == DET
        assert lattice.join(OPEN, SKEY) == OPEN
        assert lattice.leq(SKEY, DET)
        assert not lattice.leq(OPEN, DET)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            RankedLattice(())


def test_lattice_base_is_abstract():
    base = Lattice()
    with pytest.raises(NotImplementedError):
        base.bottom()
    with pytest.raises(NotImplementedError):
        base.join(1, 2)


# -- a synthetic analysis for solver tests ---------------------------------

INF = "inf"


class CounterLattice(Lattice):
    """Naturals under max — unbounded height, widening jumps to ``INF``."""

    def __init__(self, widen_to_top=True):
        self.widen_to_top = widen_to_top

    def bottom(self):
        return 0

    def join(self, left, right):
        if INF in (left, right):
            return INF
        return max(left, right)

    def widen(self, old, new):
        joined = self.join(old, new)
        if self.widen_to_top and joined != old:
            return INF
        return joined


class CountingAnalysis:
    """Head value = max over body positions, plus one.  Diverges without
    widening on recursive programs — exactly what the solver guard is for."""

    name = "counting"

    def __init__(self, widen_to_top=True):
        self.lattice = CounterLattice(widen_to_top)

    def seed(self, relation, position):
        return 0

    def transfer(self, rule, env):
        depth = 0
        for atom in rule.body:
            for index in range(len(atom.terms)):
                depth = self.lattice.join(depth, env.lookup(atom.relation, index))
        if depth == INF:
            return [INF for _ in rule.head.terms]
        return [depth + 1 for _ in rule.head.terms]


def chain_program(length=3):
    """``T1(x) <- S(x); T2(x) <- T1(x); ...`` — stratified, single sweep."""
    x = V("x")
    rules = [Rule(RelationalAtom("T1", (x,)), (RelationalAtom("S", (x,)),))]
    for index in range(2, length + 1):
        rules.append(
            Rule(
                RelationalAtom(f"T{index}", (x,)),
                (RelationalAtom(f"T{index - 1}", (x,)),),
            )
        )
    return DatalogProgram(rules=rules)


def recursive_program():
    """``T(x) <- S(x); T(x) <- T(x)`` — no stratification exists."""
    x = V("x")
    return DatalogProgram(
        rules=[
            Rule(RelationalAtom("T", (x,)), (RelationalAtom("S", (x,)),)),
            Rule(RelationalAtom("T", (x,)), (RelationalAtom("T", (x,)),)),
        ]
    )


class TestSolver:
    def test_chain_solves_in_one_sweep(self):
        program = chain_program(4)
        result = solve(program, CountingAnalysis())
        assert result.value("T1", 0) == 1
        assert result.value("T4", 0) == 4
        assert result.stats.iterations == result.stats.relations == 4
        assert result.stats.widenings == 0

    def test_seed_answers_undefined_relations(self):
        result = solve(chain_program(1), CountingAnalysis())
        assert result.value("S", 0) == 0  # the seed, not an error

    def test_recursive_program_widens_to_top(self):
        result = solve(recursive_program(), CountingAnalysis())
        assert result.value("T", 0) == INF
        assert result.stats.widenings > 0
        assert result.stats.iterations > 1

    def test_widen_after_controls_precision(self):
        # A finite bound would be kept with a large-enough widen_after if the
        # chain converged; here it never does, so widening must kick in right
        # after the threshold.
        result = solve(recursive_program(), CountingAnalysis(), widen_after=7)
        assert result.value("T", 0) == INF

    def test_ineffective_widening_raises_flow_error(self):
        with pytest.raises(FlowError) as excinfo:
            solve(recursive_program(), CountingAnalysis(widen_to_top=False))
        assert "diverged" in str(excinfo.value)
        assert "counting" in str(excinfo.value)

    def test_divergence_guard_bounds_visits(self):
        analysis = CountingAnalysis(widen_to_top=False)
        try:
            solve(recursive_program(), analysis)
        except FlowError:
            pass
        # The guard fires at the ceiling, not after unbounded work.
        assert MAX_VISITS_PER_RELATION == 100

    def test_transfer_none_derives_nothing(self):
        class RefusingAnalysis(CountingAnalysis):
            def transfer(self, rule, env):
                return None

        result = solve(chain_program(2), RefusingAnalysis())
        assert result.value("T1", 0) == 0  # bottom: no rule contributed
        assert result.stats.updates == 0

    def test_relation_values_and_unknown_relation(self):
        program = chain_program(2)
        result = solve(program, CountingAnalysis())
        assert result.relation_values("T2") == [2]
        with pytest.raises(ReproError):
            result.relation_values("NOPE")

    def test_result_name(self):
        result = solve(chain_program(1), CountingAnalysis())
        assert result.name == "counting"
        assert isinstance(result, FlowResult)


class TestEvaluationOrder:
    def test_stratified_order_puts_dependencies_first(self):
        order = evaluation_order(chain_program(3))
        assert order == ["T1", "T2", "T3"]

    def test_recursive_fallback_is_definition_order(self):
        order = evaluation_order(recursive_program())
        assert order == ["T"]  # stratify raises; first-definition order


class TestEnvironment:
    def test_variable_matches_by_identity(self):
        x, other = V("x"), V("x")
        rule = Rule(
            RelationalAtom("T", (x,)),
            (RelationalAtom("A", (x, other)), RelationalAtom("B", (other,))),
        )
        analysis = CountingAnalysis()
        env = Environment(analysis)
        env.set("A", 0, 5)
        env.set("A", 1, 7)
        env.set("B", 0, 9)
        # x occurs (by identity) only at A[0]; the equal-but-distinct
        # Variable("x") at A[1] / B[0] must not leak in.
        assert env.variable(rule, x) == [5]
        assert env.variable(rule, other) == [7, 9]

    def test_defined_relations_start_at_bottom(self):
        env = Environment(CountingAnalysis())
        env.mark_defined("T")
        assert env.lookup("T", 0) == 0
        env.set("T", 0, 3)
        assert env.lookup("T", 0) == 3
