"""Tests for the Skolem-unification propagation policy and rule statistics."""

from repro.core.query_generation import generate_queries, rewrite_to_unitary
from repro.core.resolution import resolve_key_conflicts
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.datalog.engine import evaluate
from repro.logic.terms import SkolemTerm
from repro.model.instance import instance_from_dict
from repro.scenarios.appendix_c import example_6_7_problem, example_c4_problem


def _resolve(problem, propagate):
    schema_mapping = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    ).schema_mapping
    unitary = rewrite_to_unitary(
        skolemize_schema_mapping(list(schema_mapping), problem.target_schema)
    )
    return resolve_key_conflicts(
        unitary,
        problem.source_schema,
        problem.target_schema,
        propagate_unification=propagate,
    )


class TestPropagationPolicy:
    def test_c4_without_propagation_matches_paper_listing(self):
        """Example C.4's listing: originals keep f^1_b; fusions use f^{1,3}_b."""
        final, report = _resolve(example_c4_problem(), propagate=False)
        originals = final[: len(final) - len(report.fused)]
        fused = report.fused
        original_b = {
            t.functor
            for m in originals
            for t in [m.consequent.terms[2]]
            if isinstance(t, SkolemTerm)
        }
        fused_b = {
            t.functor
            for m in fused
            for t in [m.consequent.terms[2]]
            if isinstance(t, SkolemTerm)
        }
        assert all("+" not in f for f in original_b)  # un-merged names kept
        assert any("+" in f for f in fused_b)  # fusion uses the merged functor

    def test_c4_with_propagation_matches_example_6_7(self):
        final, _report = _resolve(example_c4_problem(), propagate=True)
        b_functors = {
            t.functor
            for m in final
            for t in [m.consequent.terms[2]]
            if isinstance(t, SkolemTerm)
        }
        assert len(b_functors) == 1 and "+" in next(iter(b_functors))

    def test_policies_agree_up_to_invented_renaming(self):
        """Both policies produce homomorphically equivalent outputs."""
        from repro.core.pipeline import MappingProblem
        from repro.datalog import evaluate
        from repro.core.query_generation import build_program
        from repro.exchange.solutions import homomorphically_equivalent

        problem = example_6_7_problem()
        source = instance_from_dict(
            problem.source_schema,
            {"S1": [("k1", "a1")], "S2": [("k2", "b2")]},
        )
        outputs = []
        for propagate in (True, False):
            final, _ = _resolve(problem, propagate)
            program = build_program(
                final, problem.source_schema, problem.target_schema
            )
            outputs.append(evaluate(program, source).target)
        assert homomorphically_equivalent(outputs[0], outputs[1])


class TestRuleStatistics:
    def test_rule_counts_reported(self, figure1_problem, cars3_instance):
        from repro.core.pipeline import MappingSystem

        system = MappingSystem(figure1_problem)
        program = system.transformation
        result = evaluate(program, cars3_instance)
        assert len(result.rule_counts) == len(program.rules)
        by_head = {
            (program.rules[i].head_relation, tuple(a.relation for a in program.rules[i].body)): count
            for i, count in enumerate(result.rule_counts)
        }
        assert by_head[("P2", ("P3",))] == 2
        assert by_head[("OCtmp", ("O3", "C3", "P3"))] == 1
        assert by_head[("C2", ("C3",))] == 1  # only the ownerless car
        assert by_head[("C2", ("O3", "C3", "P3"))] == 1
