"""Tests for Clio-style filters on correspondences (paper section 7).

Filters restrict a correspondence with comparisons against constants.  The
paper argues they are *less* expressive than referenced-attribute
correspondences ("it is not possible to specify such a correspondence using
a traditional value correspondence, even resorting to filters") — the last
test demonstrates that gap executably.
"""

import pytest

from repro.core.correspondences import Filter, correspondence, parse_filter
from repro.core.pipeline import MappingProblem, MappingSystem
from repro.errors import CorrespondenceError
from repro.model.builder import SchemaBuilder
from repro.model.instance import instance_from_dict
from repro.model.values import NULL, is_labeled_null
from repro.scenarios import cars
from repro.sqlgen import run_on_sqlite


class TestFilterParsing:
    def test_equality_filter(self):
        item = parse_filter("P3.name = 'MJ'")
        assert item == Filter("P3", "name", "=", "MJ")

    def test_disequality_filter(self):
        item = parse_filter("P3.name != 'MJ'")
        assert item == Filter("P3", "name", "!=", "MJ")

    def test_unquoted_value(self):
        assert parse_filter("R.a = 7").value == "7"

    def test_bad_operator(self):
        with pytest.raises(CorrespondenceError):
            parse_filter("R.a < 3")

    def test_bad_attribute(self):
        with pytest.raises(CorrespondenceError):
            parse_filter("noDotHere = 'x'")

    def test_unsupported_operator_object(self):
        with pytest.raises(CorrespondenceError):
            Filter("R", "a", "<", "x")

    def test_where_clause_with_and(self):
        c = correspondence("A.x", "B.y", where="A.x = 'v' and A.z != 'w'")
        assert len(c.filters) == 2


class TestFilterValidation:
    def test_filter_relation_must_be_on_path(self, cars3, cars2):
        c = correspondence("P3.name", "P2.name", where="C3.model = 'Ford'")
        with pytest.raises(CorrespondenceError):
            c.validate(cars3, cars2)

    def test_filter_attribute_must_exist(self, cars3, cars2):
        c = correspondence("P3.name", "P2.name", where="P3.ghost = 'x'")
        with pytest.raises(CorrespondenceError):
            c.validate(cars3, cars2)

    def test_filter_on_path_relation_allowed(self, cars3):
        c = correspondence(
            "O3.person > P3.name", "C1.name", where="O3.car = 'c85'"
        )
        c.validate(cars3, cars.cars1_schema())


class TestFilteredTransformations:
    def _problem(self, where):
        source = SchemaBuilder("s").relation("Emp", "id", "name", "dept").build()
        target = SchemaBuilder("t").relation("ItStaff", "id", "name").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("Emp.id", "ItStaff.id")
        problem.add_correspondence("Emp.name", "ItStaff.name", where=where)
        return problem

    def _source(self, problem):
        return instance_from_dict(
            problem.source_schema,
            {
                "Emp": [
                    ("e1", "Ada", "it"),
                    ("e2", "Alan", "it"),
                    ("e3", "Grace", "hr"),
                ]
            },
        )

    def test_equality_filter_selects(self):
        problem = self._problem("Emp.dept = 'it'")
        system = MappingSystem(problem)
        output = system.transform(self._source(problem))
        assert set(output.relation("ItStaff").rows) == {("e1", "Ada"), ("e2", "Alan")}

    def test_disequality_filter_excludes(self):
        problem = self._problem("Emp.dept != 'it'")
        system = MappingSystem(problem)
        output = system.transform(self._source(problem))
        assert set(output.relation("ItStaff").rows) == {("e3", "Grace")}

    def test_filter_appears_in_premise(self):
        problem = self._problem("Emp.dept = 'it'")
        [mapping] = MappingSystem(problem).schema_mapping
        assert len(mapping.premise.equalities) == 1
        assert "'it'" in repr(mapping.premise.equalities[0])

    def test_sqlite_parity_with_filters(self):
        for where in ("Emp.dept = 'it'", "Emp.dept != 'it'"):
            problem = self._problem(where)
            system = MappingSystem(problem)
            source = self._source(problem)
            assert run_on_sqlite(system.transformation, source) == system.transform(
                source
            ), where

    def test_filter_on_referenced_path_step(self):
        # Filter on the *path* relation of an r-a correspondence: only
        # owners of car c85 contribute their name.
        problem = MappingProblem(cars.cars3_schema(), cars.cars1_schema())
        problem.add_correspondence("C3.car", "C1.car")
        problem.add_correspondence("C3.model", "C1.model")
        problem.add_correspondence(
            "O3.person > P3.name", "C1.name", where="O3.car = 'c85'"
        )
        system = MappingSystem(problem)
        output = system.transform(cars.cars3_source_instance())
        rows = {row[0]: row[2] for row in output.relation("C1")}
        assert rows["c85"] == "MJ"
        assert rows["c86"] is NULL

    def test_json_roundtrip_with_filters(self):
        from repro.dsl.jsonio import problem_from_dict, problem_to_dict

        problem = self._problem("Emp.dept != 'it'")
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.correspondences[1].filters == problem.correspondences[1].filters

    def test_dsl_where_clause(self):
        from repro.dsl.parser import parse_problem

        problem = parse_problem(
            """
            source schema S:
              relation Emp (id key, name, dept)
            target schema T:
              relation ItStaff (id key, name)
            correspondences:
              Emp.id -> ItStaff.id
              Emp.name -> ItStaff.name where Emp.dept = 'it' [staff]
            """
        )
        c = problem.correspondences[1]
        assert c.label == "staff"
        assert c.filters == (Filter("Emp", "dept", "=", "it"),)


class TestFiltersCannotExpressOwnerNames:
    """The paper's section-7 claim, made executable.

    The desired mapping of Example 2.2 ("only owners' names flow into
    C1.name") is expressible with a referenced-attribute correspondence but
    with *no* filter on the plain correspondence ``P3.name -> C1.name``:
    filters compare attributes with constants, so for any constant-based
    filter there is an instance where it selects a non-owner or drops an
    owner.
    """

    def test_constant_filters_are_instance_specific(self):
        # A filter tuned to one instance (selecting p22, the owner)...
        problem = MappingProblem(cars.cars3_schema(), cars.cars1_schema())
        problem.add_correspondence("C3.car", "C1.car")
        problem.add_correspondence("C3.model", "C1.model")
        problem.add_correspondence("P3.name", "C1.name", where="P3.person = 'p22'")
        system = MappingSystem(problem)

        # ...matches the r-a semantics on the Figure-2 instance...
        original = cars.cars3_source_instance()
        filtered_output = system.transform(original)
        invented_cars = [
            row for row in filtered_output.relation("C1") if is_labeled_null(row[0])
        ]
        assert {row[2] for row in invented_cars} == {"MJ"}  # only p22 leaks

        # ...but breaks as soon as the ownership changes: p21 now owns c85,
        # yet the filter still selects p22 (a non-owner) and misses p21.
        moved = cars.cars3_source_instance()
        moved.relation("O3").discard(("c85", "p22"))
        moved.add("O3", ("c85", "p21"))
        wrong = system.transform(moved)
        invented = [row for row in wrong.relation("C1") if is_labeled_null(row[0])]
        assert {row[2] for row in invented} == {"MJ"}  # still the non-owner!

        ra_system = MappingSystem(cars.figure4_ra_problem())
        right = ra_system.transform(moved)
        names = {row[0]: row[2] for row in right.relation("C1")}
        assert names["c85"] == "John"  # the r-a correspondence adapts
        assert not any(is_labeled_null(row[0]) for row in right.relation("C1"))
