"""Fuzzing the whole pipeline with randomly drawn mapping problems.

For arbitrary (small) problems over a fixed schema pool, the pipeline must
either signal one of the paper's two errors (non-functional mapping, hard
key conflict) or produce a transformation whose output satisfies every
target constraint and agrees between the Datalog engine and SQLite.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import MappingProblem, MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.errors import HardKeyConflictError, NonFunctionalMappingError
from repro.model.builder import SchemaBuilder
from repro.model.diff import diff_up_to_invented
from repro.model.instance import Instance
from repro.model.validation import validate_instance
from repro.model.values import NULL
from repro.sqlgen.executor import run_on_sqlite


def _source_schema():
    return (
        SchemaBuilder("fuzz-src")
        .relation("S1", "k", "a", "b?")
        .relation("S2", "k", "c")
        .relation("S3", "k", "ref?", "d")
        .foreign_key("S3", "ref", "S1")
        .build()
    )


def _target_schema():
    return (
        SchemaBuilder("fuzz-tgt")
        .relation("T1", "k", "x?", "y")
        .relation("T2", "k", "z?")
        .build()
    )


_SOURCE_ATTRS = [
    "S1.k", "S1.a", "S1.b", "S2.k", "S2.c", "S3.k", "S3.d",
    "S3.ref > S1.a", "S3.ref > S1.b",
]
_TARGET_ATTRS = ["T1.k", "T1.x", "T1.y", "T2.k", "T2.z"]


@st.composite
def problems(draw):
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(_SOURCE_ATTRS), st.sampled_from(_TARGET_ATTRS)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    problem = MappingProblem(_source_schema(), _target_schema(), name="fuzz")
    for source, target in pairs:
        problem.add_correspondence(source, target)
    return problem


@st.composite
def instances(draw):
    instance = Instance(_source_schema())
    n = draw(st.integers(min_value=0, max_value=4))
    for i in range(n):
        b = draw(st.sampled_from(["b0", "b1", None]))
        instance.add("S1", (f"k{i}", f"a{i % 2}", NULL if b is None else b))
    for i in range(draw(st.integers(0, 3))):
        instance.add("S2", (f"k{i}", f"c{i}"))
    for i in range(draw(st.integers(0, 3))):
        ref = draw(st.sampled_from(list(range(n)) + [None])) if n else None
        instance.add(
            "S3",
            (f"k{i}", NULL if ref is None else f"k{ref}", f"d{i}"),
        )
    return instance


@settings(max_examples=60, deadline=None)
@given(problems(), instances())
def test_pipeline_is_safe_on_random_problems(problem, source):
    try:
        system = MappingSystem(problem)
        output = system.transform(source)
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # the paper's "signal an error and stop" — a valid outcome
    assert validate_instance(output).ok
    assert run_on_sqlite(system.transformation, source) == output


@settings(max_examples=200, deadline=None)
@given(problems(), instances())
def test_batch_engine_agrees_with_reference(problem, source):
    """Differential property: the batch runtime is observationally equal to
    the reference interpreter on random problems and instances — identical
    target (up to LabeledNull isomorphism), intermediates and rule counts —
    or both raise the same paper error.

    The paper's two errors are signalled during query *generation*, before
    either engine runs, so an error outcome trivially agrees.
    """
    try:
        program = MappingSystem(problem).transformation
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # signalled before evaluation: both engines see the same error
    reference = evaluate(program, source)
    batch = evaluate_batch(program, source)
    assert reference.target == batch.target
    assert diff_up_to_invented(reference.target, batch.target).empty
    assert reference.rule_counts == batch.rule_counts
    for name, rows in reference.intermediates.items():
        assert set(rows) == set(batch.intermediates[name]), name


@settings(max_examples=40, deadline=None)
@given(problems(), instances())
def test_subsumption_optimization_preserves_semantics(problem, source):
    """``remove_subsumed_rules`` must never change what the engine computes."""
    try:
        optimized = MappingSystem(problem, optimize=True)
        plain = MappingSystem(problem, optimize=False)
        optimized_output = optimized.transform(source)
        plain_output = plain.transform(source)
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # the paper's "signal an error and stop" — a valid outcome
    assert len(optimized.transformation.rules) <= len(plain.transformation.rules)
    assert optimized_output == plain_output


@settings(max_examples=40, deadline=None)
@given(problems())
def test_generation_is_deterministic(problem):
    def signature():
        try:
            system = MappingSystem(problem)
            return repr(system.transformation)
        except (NonFunctionalMappingError, HardKeyConflictError) as error:
            return type(error).__name__

    first = signature()
    second = signature()
    # Variable display names differ between runs (fresh objects), so compare
    # shapes: relation names, rule count, negation count.
    import re

    def shape(text):
        return (
            len(text.splitlines()),
            sorted(re.findall(r"[A-Za-z_]\w*\(", text)),
        )

    assert shape(first) == shape(second)
