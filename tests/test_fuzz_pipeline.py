"""Fuzzing the whole pipeline with randomly drawn mapping problems.

For arbitrary (small) problems over a fixed schema pool, the pipeline must
either signal one of the paper's two errors (non-functional mapping, hard
key conflict) or produce a transformation whose output satisfies every
target constraint and agrees between the Datalog engine and SQLite.

The problem and instance strategies live in ``tests/strategies.py``; the
instances come from the scenario generator's shared two-phase builder.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.errors import HardKeyConflictError, NonFunctionalMappingError
from repro.model.diff import diff_up_to_invented
from repro.model.validation import validate_instance
from repro.sqlgen.executor import run_on_sqlite

from .strategies import fuzz_instances, fuzz_problems


@settings(max_examples=60, deadline=None)
@given(fuzz_problems(), fuzz_instances())
def test_pipeline_is_safe_on_random_problems(problem, source):
    try:
        system = MappingSystem(problem)
        output = system.transform(source)
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # the paper's "signal an error and stop" — a valid outcome
    assert validate_instance(output).ok
    assert run_on_sqlite(system.transformation, source) == output


@settings(max_examples=200, deadline=None)
@given(fuzz_problems(), fuzz_instances())
def test_batch_engine_agrees_with_reference(problem, source):
    """Differential property: the batch runtime is observationally equal to
    the reference interpreter on random problems and instances — identical
    target (up to LabeledNull isomorphism), intermediates and rule counts —
    or both raise the same paper error.

    The paper's two errors are signalled during query *generation*, before
    either engine runs, so an error outcome trivially agrees.
    """
    try:
        program = MappingSystem(problem).transformation
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # signalled before evaluation: both engines see the same error
    reference = evaluate(program, source)
    batch = evaluate_batch(program, source)
    assert reference.target == batch.target
    assert diff_up_to_invented(reference.target, batch.target).empty
    assert reference.rule_counts == batch.rule_counts
    for name, rows in reference.intermediates.items():
        assert set(rows) == set(batch.intermediates[name]), name


@settings(max_examples=40, deadline=None)
@given(fuzz_problems(), fuzz_instances())
def test_subsumption_optimization_preserves_semantics(problem, source):
    """``remove_subsumed_rules`` must never change what the engine computes."""
    try:
        optimized = MappingSystem(problem, optimize=True)
        plain = MappingSystem(problem, optimize=False)
        optimized_output = optimized.transform(source)
        plain_output = plain.transform(source)
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # the paper's "signal an error and stop" — a valid outcome
    assert len(optimized.transformation.rules) <= len(plain.transformation.rules)
    assert optimized_output == plain_output


@settings(max_examples=40, deadline=None)
@given(fuzz_problems())
def test_generation_is_deterministic(problem):
    def signature():
        try:
            system = MappingSystem(problem)
            return repr(system.transformation)
        except (NonFunctionalMappingError, HardKeyConflictError) as error:
            return type(error).__name__

    first = signature()
    second = signature()
    # Variable display names differ between runs (fresh objects), so compare
    # shapes: relation names, rule count, negation count.
    import re

    def shape(text):
        return (
            len(text.splitlines()),
            sorted(re.findall(r"[A-Za-z_]\w*\(", text)),
        )

    assert shape(first) == shape(second)
