"""Tests for the instance-level chase and canonical solutions."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import generate_schema_mapping
from repro.errors import ConstraintViolationError
from repro.exchange.instance_chase import (
    canonical_universal_solution,
    chase_target_foreign_keys,
    chase_with_key_egds,
    chase_with_tgds,
)
from repro.model.instance import instance_from_dict
from repro.model.validation import validate_instance
from repro.model.values import NULL, LabeledNull
from repro.scenarios import cars


def _figure1_mapping(figure1_problem):
    return generate_schema_mapping(
        figure1_problem.source_schema,
        figure1_problem.target_schema,
        figure1_problem.correspondences,
    ).schema_mapping


class TestTgdChase:
    def test_invents_labeled_nulls(self, figure1_problem, cars3_instance):
        mapping = _figure1_mapping(figure1_problem)
        pre = chase_with_tgds(mapping, cars3_instance)
        c2_rows = pre.relation("C2").rows
        invented = [
            row for row in c2_rows if isinstance(row[2], LabeledNull)
        ]
        # The C3 -> C2 tgd fires for both cars, inventing owner placeholders.
        assert len(invented) == 2

    def test_null_policy(self, figure1_problem, cars3_instance):
        mapping = _figure1_mapping(figure1_problem)
        pre = chase_with_tgds(
            mapping, cars3_instance, null_for_nullable_existentials=True
        )
        nulls = [row for row in pre.relation("C2") if row[2] is NULL]
        assert len(nulls) == 2

    def test_premise_conditions_respected(self):
        # C.3: the p = null mapping only fires on ownerless cars.
        problem = cars.figure14_problem()
        mapping = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        ).schema_mapping
        source = cars.figure15_source_instance()
        pre = chase_with_tgds(mapping, source)
        assert set(pre.relation("O3").rows) == {("c85", "p22")}
        assert set(pre.relation("C3").rows) == {("c85", "Ferrari"), ("c86", "Ford")}


class TestEgdChase:
    def test_labeled_null_yields_to_constant(self, cars2):
        invented = LabeledNull("f", ("c85",))
        instance = instance_from_dict(
            cars2,
            {"C2": [("c85", "Ferrari", invented), ("c85", "Ferrari", "p22")]},
        )
        result = chase_with_key_egds(instance)
        assert not result.failed
        assert result.merged == 1
        assert set(result.instance.relation("C2").rows) == {("c85", "Ferrari", "p22")}

    def test_substitution_propagates(self, cars2):
        invented = LabeledNull("f", ("c85",))
        instance = instance_from_dict(
            cars2,
            {
                "C2": [("c85", "Ferrari", invented), ("c85", "Ferrari", "p22")],
                "P2": [(invented, "n", "e")],
            },
        )
        result = chase_with_key_egds(instance)
        assert set(result.instance.relation("P2").rows) == {("p22", "n", "e")}

    def test_constant_clash_fails(self, cars2):
        instance = instance_from_dict(
            cars2,
            {"C2": [("c85", "Ferrari", "p1"), ("c85", "Ferrari", "p2")]},
        )
        result = chase_with_key_egds(instance)
        assert result.failed
        assert "c85" in result.failure_reason

    def test_null_clash_without_resolution(self, cars2):
        instance = instance_from_dict(
            cars2,
            {"C2": [("c85", "Ferrari", NULL), ("c85", "Ferrari", "p22")]},
        )
        assert chase_with_key_egds(instance).failed
        resolved = chase_with_key_egds(instance, resolve_nulls=True)
        assert not resolved.failed
        assert set(resolved.instance.relation("C2").rows) == {("c85", "Ferrari", "p22")}

    def test_null_preferred_over_invented(self, cars2):
        invented = LabeledNull("f", ("c85",))
        instance = instance_from_dict(
            cars2,
            {"C2": [("c85", "Ferrari", NULL), ("c85", "Ferrari", invented)]},
        )
        result = chase_with_key_egds(instance, resolve_nulls=True)
        assert set(result.instance.relation("C2").rows) == {("c85", "Ferrari", NULL)}

    def test_clean_instance_untouched(self, cars3_instance):
        result = chase_with_key_egds(cars3_instance)
        assert not result.failed
        assert result.instance == cars3_instance


class TestForeignKeyChase:
    def test_dangling_fk_gets_referenced_tuple(self, cars2):
        instance = instance_from_dict(cars2, {"C2": [("c1", "Ford", "ghost")]})
        chased = chase_target_foreign_keys(instance)
        assert validate_instance(chased).ok is False or True  # nulls allowed
        keys = chased.relation("P2").project(["person"])
        assert ("ghost",) in keys

    def test_null_fk_not_chased(self, cars2):
        instance = instance_from_dict(cars2, {"C2": [("c1", "Ford", NULL)]})
        chased = chase_target_foreign_keys(instance)
        assert len(chased.relation("P2")) == 0


class TestCanonicalSolution:
    def test_novel_output_is_canonical_under_null_policy(
        self, figure1_problem, cars3_instance
    ):
        system = MappingSystem(figure1_problem)
        produced = system.transform(cars3_instance)
        canonical = canonical_universal_solution(
            system.schema_mapping, cars3_instance, null_for_nullable_existentials=True
        )
        assert produced == canonical

    def test_canonical_merges_owner_conflicts(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        canonical = canonical_universal_solution(system.schema_mapping, cars3_instance)
        # The invented owner of c85 is merged with p22 by the key egd.
        owners = {row[0]: row[2] for row in canonical.relation("C2")}
        assert owners["c85"] == "p22"
        assert isinstance(owners["c86"], LabeledNull)

    def test_failure_raises(self, cars2):
        from repro.logic.atoms import RelationalAtom
        from repro.logic.mappings import LogicalMapping, Premise, SchemaMapping
        from repro.logic.terms import Variable
        from repro.model.builder import SchemaBuilder

        # Two sources copying different owners for the same car.
        source = (
            SchemaBuilder("s").relation("A", "car", "p").relation("B", "car", "p").build()
        )
        k, p = Variable("k"), Variable("p")
        k2, p2 = Variable("k2"), Variable("p2")
        mapping = SchemaMapping(source, cars2)
        mapping.mappings.append(
            LogicalMapping(
                Premise(atoms=(RelationalAtom("A", (k, p)),)),
                (RelationalAtom("C2", (k, Variable("m"), p)),),
                label="a",
            )
        )
        # make model existential-free by reusing p (not important here)
        mapping.mappings[0] = LogicalMapping(
            Premise(atoms=(RelationalAtom("A", (k, p)),)),
            (RelationalAtom("C2", (k, p, p)),),
            label="a",
        )
        mapping.mappings.append(
            LogicalMapping(
                Premise(atoms=(RelationalAtom("B", (k2, p2)),)),
                (RelationalAtom("C2", (k2, p2, p2)),),
                label="b",
            )
        )
        instance = instance_from_dict(source, {"A": [("c1", "x")], "B": [("c1", "y")]})
        with pytest.raises(ConstraintViolationError):
            canonical_universal_solution(mapping, instance)
