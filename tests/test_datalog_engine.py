"""Tests for the Datalog evaluation engine."""

import pytest

from repro.datalog.engine import evaluate, evaluate_rule, _Store
from repro.datalog.program import DatalogProgram, Rule
from repro.errors import EvaluationError
from repro.logic.atoms import Equality, RelationalAtom
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder
from repro.model.instance import Instance, instance_from_dict
from repro.model.values import NULL, LabeledNull


def V(name):
    return Variable(name)


def _store(**relations):
    store = _Store()
    for name, rows in relations.items():
        store.add_relation(name, rows)
    return store


class TestRuleEvaluation:
    def test_copy_rule(self):
        x, y = V("x"), V("y")
        rule = Rule(head=RelationalAtom("T", (x, y)), body=(RelationalAtom("S", (x, y)),))
        store = _store(S=[("a", 1), ("b", 2)])
        assert sorted(evaluate_rule(rule, store)) == [("a", 1), ("b", 2)]

    def test_join_on_shared_variable(self):
        x, y, z = V("x"), V("y"), V("z")
        rule = Rule(
            head=RelationalAtom("T", (x, z)),
            body=(RelationalAtom("R", (x, y)), RelationalAtom("S", (y, z))),
        )
        store = _store(R=[("a", "k1"), ("b", "k2")], S=[("k1", "v1"), ("k3", "v3")])
        assert evaluate_rule(rule, store) == [("a", "v1")]

    def test_join_matches_null_values(self):
        # null is an ordinary value in the paper's semantics: it joins.
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, y)), RelationalAtom("S", (y,))),
        )
        store = _store(R=[("a", NULL)], S=[(NULL,)])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_repeated_variable_in_atom(self):
        x = V("x")
        rule = Rule(head=RelationalAtom("T", (x,)), body=(RelationalAtom("R", (x, x)),))
        store = _store(R=[("a", "a"), ("a", "b")])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_constant_in_body(self):
        x = V("x")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (Constant("only"), x)),),
        )
        store = _store(R=[("only", 1), ("other", 2)])
        assert evaluate_rule(rule, store) == [(1,)]

    def test_null_term_in_body(self):
        x = V("x")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, NULL_TERM)),),
        )
        store = _store(R=[("a", NULL), ("b", "x")])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_null_and_nonnull_conditions(self):
        x, y = V("x"), V("y")
        store = _store(R=[("a", NULL), ("b", "v")])
        base = dict(head=RelationalAtom("T", (x,)), body=(RelationalAtom("R", (x, y)),))
        null_rule = Rule(null_vars=(y,), **base)
        nonnull_rule = Rule(nonnull_vars=(y,), **base)
        assert evaluate_rule(null_rule, store) == [("a",)]
        assert evaluate_rule(nonnull_rule, store) == [("b",)]

    def test_equality_condition(self):
        x, y, z = V("x"), V("y"), V("z")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, y, z)),),
            equalities=(Equality(y, z),),
        )
        store = _store(R=[("a", 1, 1), ("b", 1, 2)])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_negation(self):
        x = V("x")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x,)),),
            negated=(RelationalAtom("Block", (x,)),),
        )
        store = _store(R=[("a",), ("b",)], Block=[("b",)])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_skolem_head_builds_labeled_null(self):
        x = V("x")
        rule = Rule(
            head=RelationalAtom("T", (x, SkolemTerm("f", [x]))),
            body=(RelationalAtom("R", (x,)),),
        )
        store = _store(R=[("a",)])
        assert evaluate_rule(rule, store) == [("a", LabeledNull("f", ("a",)))]

    def test_nested_skolem_head(self):
        x = V("x")
        nested = SkolemTerm("g", [SkolemTerm("f", [x])])
        rule = Rule(
            head=RelationalAtom("T", (x, nested)),
            body=(RelationalAtom("R", (x,)),),
        )
        store = _store(R=[("a",)])
        [(_, value)] = evaluate_rule(rule, store)
        assert value == LabeledNull("g", (LabeledNull("f", ("a",)),))

    def test_duplicate_results_deduplicated(self):
        x, y = V("x"), V("y")
        rule = Rule(head=RelationalAtom("T", (x,)), body=(RelationalAtom("R", (x, y)),))
        store = _store(R=[("a", 1), ("a", 2)])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_unknown_relation_raises(self):
        x = V("x")
        rule = Rule(head=RelationalAtom("T", (x,)), body=(RelationalAtom("Nope", (x,)),))
        with pytest.raises(EvaluationError):
            evaluate_rule(rule, _store())

    def test_cartesian_product(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x, y)),
            body=(RelationalAtom("R", (x,)), RelationalAtom("S", (y,))),
        )
        store = _store(R=[("a",), ("b",)], S=[(1,), (2,)])
        assert len(evaluate_rule(rule, store)) == 4


class TestProgramEvaluation:
    def _program(self):
        source = SchemaBuilder("src").relation("S", "k", "v").build()
        target = SchemaBuilder("tgt").relation("T", "k", "v").build()
        x, y = V("x"), V("y")
        k = V("k")
        rules = [
            Rule(head=RelationalAtom("T", (x, y)), body=(RelationalAtom("S", (x, y)),),
                 negated=(RelationalAtom("Skip", (x,)),)),
            Rule(head=RelationalAtom("Skip", (k,)), body=(RelationalAtom("S", (k, Constant("hide"))),)),
        ]
        return source, DatalogProgram(
            rules=rules, source_schema=source, target_schema=target,
            intermediates={"Skip": 1},
        )

    def test_stratified_evaluation(self):
        source, program = self._program()
        instance = instance_from_dict(source, {"S": [("a", "x"), ("b", "hide")]})
        result = evaluate(program, instance)
        assert set(result.target.relation("T").rows) == {("a", "x")}
        assert result.intermediates["Skip"] == [("b",)]

    def test_requires_target_schema(self):
        source, program = self._program()
        program.target_schema = None
        with pytest.raises(EvaluationError):
            evaluate(program, Instance(source))

    def test_figure1_end_to_end(self, figure1_problem, cars3_instance):
        from repro.core.pipeline import MappingSystem
        from repro.scenarios.cars import figure3_expected_target

        system = MappingSystem(figure1_problem)
        result = evaluate(system.transformation, cars3_instance)
        assert result.target == figure3_expected_target()


class TestStoreIndexInvalidation:
    """Re-adding a relation must drop indexes built over its old rows."""

    def test_readd_invalidates_indexes(self):
        store = _store(S=[("a", 1), ("b", 2)])
        assert store.index("S", (0,)) == {("a",): [("a", 1)], ("b",): [("b", 2)]}
        store.add_relation("S", [("c", 3)])
        assert store.index("S", (0,)) == {("c",): [("c", 3)]}
        assert ("a",) not in store.index("S", (0,))

    def test_readd_keeps_other_relations_indexes(self):
        store = _store(S=[("a", 1)], R=[("x",)])
        r_index = store.index("R", (0,))
        store.add_relation("S", [("b", 2)])
        assert store.index("R", (0,)) is r_index

    def test_join_after_readd_sees_fresh_rows(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x, y)),
            body=(RelationalAtom("R", (x,)), RelationalAtom("S", (x, y))),
        )
        store = _store(R=[("a",), ("c",)], S=[("a", 1)])
        assert evaluate_rule(rule, store) == [("a", 1)]
        # The first evaluation built an index on S; replacing S's rows must
        # not let that index leak into the second evaluation.
        store.add_relation("S", [("c", 3)])
        assert evaluate_rule(rule, store) == [("c", 3)]
