"""Tests for atoms, equalities and negated premises."""

from repro.logic.atoms import (
    Equality,
    NegatedPremise,
    RelationalAtom,
    atoms_variables,
    iter_positions,
)
from repro.logic.terms import Constant, Variable


def test_atom_basics():
    x, y = Variable("x"), Variable("y")
    atom = RelationalAtom("R", (x, y, Constant("c")))
    assert atom.arity == 3
    assert atom.variables() == [x, y]
    assert repr(atom) == "R(x,y,'c')"


def test_atom_substitution():
    x, y = Variable("x"), Variable("y")
    atom = RelationalAtom("R", (x, x))
    result = atom.substitute({x: y})
    assert result.terms == (y, y)


def test_atom_equality_and_hash():
    x = Variable("x")
    assert RelationalAtom("R", (x,)) == RelationalAtom("R", (x,))
    assert RelationalAtom("R", (x,)) != RelationalAtom("S", (x,))
    assert len({RelationalAtom("R", (x,)), RelationalAtom("R", (x,))}) == 1


def test_equality_substitution():
    x, y = Variable("x"), Variable("y")
    equality = Equality(x, Constant("c"))
    assert equality.substitute({x: y}) == Equality(y, Constant("c"))
    assert equality.variables() == [x]


def test_atoms_variables_order():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    atoms = [RelationalAtom("R", (x, y)), RelationalAtom("S", (y, z))]
    assert atoms_variables(atoms) == [x, y, z]


def test_iter_positions():
    x, y = Variable("x"), Variable("y")
    atoms = [RelationalAtom("R", (x, y))]
    assert list(iter_positions(atoms)) == [(0, 0, x), (0, 1, y)]


class TestNegatedPremise:
    def test_local_variables(self):
        k, p, n = Variable("k"), Variable("p"), Variable("n")
        negation = NegatedPremise(
            [RelationalAtom("O", (k, p)), RelationalAtom("P", (p, n))],
            correlated=[k],
        )
        assert negation.local_variables() == [p, n]

    def test_substitute_renames_correlated_only(self):
        k, k2, p = Variable("k"), Variable("k2"), Variable("p")
        negation = NegatedPremise([RelationalAtom("O", (k, p))], correlated=[k])
        renamed = negation.substitute({k: k2})
        assert renamed.correlated == (k2,)
        assert renamed.atoms[0].terms == (k2, p)

    def test_signature_invariant_under_renaming(self):
        k1, p1 = Variable("k"), Variable("p")
        k2, p2 = Variable("k'"), Variable("p'")
        a = NegatedPremise([RelationalAtom("O", (k1, p1))], correlated=[k1])
        b = NegatedPremise([RelationalAtom("O", (k2, p2))], correlated=[k2])
        assert a.signature() == b.signature()

    def test_signature_distinguishes_structure(self):
        k, p = Variable("k"), Variable("p")
        a = NegatedPremise([RelationalAtom("O", (k, p))], correlated=[k])
        b = NegatedPremise(
            [RelationalAtom("O", (k, p))], correlated=[k], nonnull_vars=[p]
        )
        assert a.signature() != b.signature()

    def test_repr_mentions_negation(self):
        k, p = Variable("k"), Variable("p")
        negation = NegatedPremise([RelationalAtom("O", (k, p))], correlated=[k])
        assert repr(negation).startswith("not{")
