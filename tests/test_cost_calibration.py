"""Calibration: static bounds dominate measured row counts, both engines.

The cost certifier's claim is *soundness*: for every valid source
instance, the symbolic bound of every operator, rule and derived relation
— evaluated at the instance's actual source relation sizes — is at least
the row count the engines measure.  This harness closes the loop against
EXPLAIN ANALYZE:

* **batch, per operator**: the batch runtime re-plans each stratum with
  live statistics, so the profiled pipelines can differ from the static
  plan.  The test reconstructs each stratum's statistics from the profile
  itself (source sizes plus the completed strata's row counts), re-plans,
  verifies the reconstruction is exact (the rendered operators match the
  profiled ones, ``est=N`` included), threads the bounds through the
  reconstructed pipeline and checks every operator's ``rows_out``;
* **reference, per rule and relation**: the tuple-at-a-time oracle has no
  operator pipeline, so its ``rows_unique`` / stratum ``rows`` actuals
  are checked against the static report's rule and relation bounds.

Both run deterministically over all bundled scenarios, then again under
hypothesis with fuzzed valid source instances.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cost import (
    CostFacts,
    Polynomial,
    ZERO,
    analyze_cost,
    bound_rule_plan,
)
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.datalog.exec.plan import plan_rule
from repro.model.instance import Instance
from repro.model.validation import validate_instance
from repro.scenarios import bundled_problems

from .strategies import draw_valid_instance
from .test_explain_analyze import synthetic_source

SCENARIOS = sorted(bundled_problems())

_SYSTEMS: dict[str, MappingSystem] = {}
_FACTS: dict[str, CostFacts] = {}


def system_for(name: str) -> MappingSystem:
    if name not in _SYSTEMS:
        _SYSTEMS[name] = MappingSystem(bundled_problems()[name])
    return _SYSTEMS[name]


def facts_for(name: str) -> CostFacts:
    """The full (certifier + flow) fact base, shared across examples."""
    if name not in _FACTS:
        system = system_for(name)
        _FACTS[name] = CostFacts.for_program(
            system.transformation,
            certification=system.certify(),
            flow=system.flow_report(),
        )
    return _FACTS[name]


def _source_sizes(source: Instance) -> dict[str, int]:
    return {
        relation.name: len(source.relation(relation.name))
        for relation in source.schema
    }


def assert_batch_profile_bounded(program, facts, source, profile) -> None:
    """Every profiled batch operator stays under its symbolic bound."""
    stats = _source_sizes(source)  # live statistics, reconstructed
    at = dict(stats)  # the evaluation point: actual source sizes
    sizes: dict[str, Polynomial] = {
        name: Polynomial.var(name) for name in stats
    }
    for stratum in profile.strata:
        relation_total = ZERO
        for rule_profile in stratum.rules:
            rule = program.rules[rule_profile.rule_index]
            plan = plan_rule(rule, stats)
            bound = bound_rule_plan(plan, sizes, facts)
            # The reconstruction must be exact: same operators, same
            # ``est=N`` statistics the runtime planned with.
            assert [op.description for op in bound.operators] == [
                op.description for op in rule_profile.operators
            ], (profile.engine, stratum.relation, rule_profile.rule_index)
            for measured, static in zip(
                rule_profile.operators, bound.operators
            ):
                assert measured.kind == static.kind
                value = static.bound.evaluate(at)
                if static.kind == "project":
                    # The key-refined bound covers *distinct* head rows.
                    assert value >= rule_profile.rows_unique, (
                        stratum.relation,
                        static.description,
                    )
                    if not bound.key_refined:
                        assert value >= measured.rows_out
                else:
                    assert value >= measured.rows_out, (
                        stratum.relation,
                        static.description,
                        static.bound.render(),
                    )
            relation_total = relation_total + bound.total
        assert relation_total.evaluate(at) >= stratum.rows, stratum.relation
        stats[stratum.relation] = stratum.rows
        sizes[stratum.relation] = relation_total


def assert_static_report_dominates(report, source, profile) -> None:
    """Relation/rule bounds of the static report cover measured actuals."""
    at = _source_sizes(source)
    by_relation = {cost.relation: cost for cost in report.relations}
    for stratum in profile.strata:
        cost = by_relation[stratum.relation]
        assert cost.bound.evaluate(at) >= stratum.rows, stratum.relation
        assert len(cost.rules) == len(stratum.rules)
        for rule_profile, rule_bound in zip(stratum.rules, cost.rules):
            assert rule_bound.total.evaluate(at) >= rule_profile.rows_unique, (
                stratum.relation,
                rule_profile.rule_index,
            )


@pytest.mark.parametrize("name", SCENARIOS)
def test_batch_operators_bounded_on_every_scenario(name):
    system = system_for(name)
    source = synthetic_source(system.problem, rows=7)
    assert validate_instance(source).ok
    result = evaluate_batch(system.transformation, source, analyze=True)
    assert_batch_profile_bounded(
        system.transformation, facts_for(name), source, result.profile
    )


@pytest.mark.parametrize("name", SCENARIOS)
def test_reference_rows_bounded_on_every_scenario(name):
    system = system_for(name)
    source = synthetic_source(system.problem, rows=7)
    report = analyze_cost(
        system.transformation, subject=name, facts=facts_for(name)
    )
    result = evaluate(system.transformation, source, analyze=True)
    assert_static_report_dominates(report, source, result.profile)


@pytest.mark.parametrize("name", SCENARIOS)
@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_fuzzed_instances_never_exceed_bounds(name, data):
    """Property: no valid source instance beats any static bound."""
    system = system_for(name)
    source = draw_valid_instance(data.draw, system.problem.source_schema, rows=(1, 3))
    assert validate_instance(source).ok, "generator must produce valid input"
    program = system.transformation
    facts = facts_for(name)

    batch = evaluate_batch(program, source, analyze=True)
    assert_batch_profile_bounded(program, facts, source, batch.profile)

    report = analyze_cost(program, subject=name, facts=facts)
    reference = evaluate(program, source, analyze=True)
    assert_static_report_dominates(report, source, reference.profile)
