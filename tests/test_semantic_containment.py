"""Curated containment pairs for the chase-based semantic engine.

Each test fixes one (contained, container) pair and asserts the engine's
verdict: a witness for provable containment, ``None`` otherwise.  ``None``
is conservative — some pairs below are semantically contained but outside
the sound fragment, and the tests document that too.
"""

import pytest

from repro.analysis.semantic.containment import (
    ConjunctiveQuery,
    ContainmentEngine,
    Witness,
    cq_from_rule,
    cq_from_tableau,
    cq_from_unitary,
    contained_in,
    equivalent,
)
from repro.core.chase import MODIFIED, logical_relations
from repro.datalog.program import Rule
from repro.logic.atoms import Disequality, Equality, RelationalAtom
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.scenarios import cars


def V(name):
    return Variable(name)


def cq(label, head, atoms, **kw):
    return ConjunctiveQuery(
        head_label=label, head=tuple(head), atoms=tuple(atoms), **kw
    )


class TestClassicalPairs:
    """Chandra–Merlin cases: plain conjunctive queries."""

    def test_renaming_is_equivalence(self):
        x, y = V("x"), V("y")
        u, v = V("u"), V("v")
        q1 = cq("Q", [x], [RelationalAtom("R", (x, y))])
        q2 = cq("Q", [u], [RelationalAtom("R", (u, v))])
        both = equivalent(q1, q2)
        assert both is not None
        assert all(w.kind == "homomorphism" for w in both)

    def test_extra_atom_is_contained_not_equal(self):
        x, y = V("x"), V("y")
        u, v = V("u"), V("v")
        bigger = cq(
            "Q", [x], [RelationalAtom("R", (x, y)), RelationalAtom("S", (y,))]
        )
        smaller = cq("Q", [u], [RelationalAtom("R", (u, v))])
        assert contained_in(bigger, smaller) is not None
        assert contained_in(smaller, bigger) is None

    def test_different_relation_not_contained(self):
        x, u = V("x"), V("u")
        q1 = cq("Q", [x], [RelationalAtom("R", (x,))])
        q2 = cq("Q", [u], [RelationalAtom("S", (u,))])
        assert contained_in(q1, q2) is None

    def test_head_label_and_arity_must_match(self):
        x, u = V("x"), V("u")
        q1 = cq("Q", [x], [RelationalAtom("R", (x,))])
        assert contained_in(q1, cq("P", [u], [RelationalAtom("R", (u,))])) is None
        v = V("v")
        assert (
            contained_in(q1, cq("Q", [u, v], [RelationalAtom("R", (u,))])) is None
        )

    def test_repeated_head_variable_one_direction(self):
        x, y = V("x"), V("y")
        u = V("u")
        diagonal = cq("Q", [u, u], [RelationalAtom("R", (u, u))])
        general = cq("Q", [x, y], [RelationalAtom("R", (x, y))])
        assert contained_in(diagonal, general) is not None
        assert contained_in(general, diagonal) is None

    def test_constant_restriction_one_direction(self):
        x, u, v = V("x"), V("u"), V("v")
        pinned = cq("Q", [x], [RelationalAtom("R", (x, Constant("a")))])
        free = cq("Q", [u], [RelationalAtom("R", (u, v))])
        assert contained_in(pinned, free) is not None
        assert contained_in(free, pinned) is None

    def test_self_join_collapse(self):
        # Q1 joins R with itself sharing the middle; Q2 walks two hops.
        x, y = V("x"), V("y")
        a, b, c = V("a"), V("b"), V("c")
        loop = cq("Q", [x], [RelationalAtom("R", (x, y)), RelationalAtom("R", (y, x))])
        path = cq("Q", [a], [RelationalAtom("R", (a, b)), RelationalAtom("R", (b, c))])
        assert contained_in(loop, path) is not None  # the loop is a path
        assert contained_in(path, loop) is None


class TestConditionsAndEqualities:
    def test_equality_collapses_to_repeated_variable(self):
        x, y = V("x"), V("y")
        u = V("u")
        with_eq = cq(
            "Q",
            [x],
            [RelationalAtom("R", (x, y))],
            equalities=(Equality(x, y),),
        )
        collapsed = cq("Q", [u], [RelationalAtom("R", (u, u))])
        both = equivalent(with_eq, collapsed)
        assert both is not None

    def test_nonnull_condition_strengthens(self):
        x, u = V("x"), V("u")
        strict = cq(
            "Q", [x], [RelationalAtom("R", (x,))], nonnull_vars=frozenset([x])
        )
        loose = cq("Q", [u], [RelationalAtom("R", (u,))])
        assert contained_in(strict, loose) is not None
        assert contained_in(loose, strict) is None

    def test_null_and_nonnull_conditions_incompatible(self):
        x, u = V("x"), V("u")
        nulled = cq("Q", [x], [RelationalAtom("R", (x,))], null_vars=frozenset([x]))
        nonnulled = cq(
            "Q", [u], [RelationalAtom("R", (u,))], nonnull_vars=frozenset([u])
        )
        assert contained_in(nulled, nonnulled) is None
        assert contained_in(nonnulled, nulled) is None

    def test_nonnull_mark_entails_null_disequality(self):
        x, u = V("x"), V("u")
        marked = cq(
            "Q", [x], [RelationalAtom("R", (x,))], nonnull_vars=frozenset([x])
        )
        diseq = cq(
            "Q",
            [u],
            [RelationalAtom("R", (u,))],
            disequalities=(Disequality(u, NULL_TERM),),
        )
        assert contained_in(marked, diseq) is not None
        # The reverse is semantically true but outside the sound fragment:
        # the engine only marks values from explicit non-null conditions.
        assert contained_in(diseq, marked) is None

    def test_explicit_disequality_must_be_entailed(self):
        x, y = V("x"), V("y")
        u, v = V("u"), V("v")
        with_diseq = cq(
            "Q",
            [x],
            [RelationalAtom("R", (x, y))],
            disequalities=(Disequality(x, y),),
        )
        container = cq(
            "Q",
            [u],
            [RelationalAtom("R", (u, v))],
            disequalities=(Disequality(u, v),),
        )
        a, b = V("a"), V("b")
        plain = cq("Q", [a], [RelationalAtom("R", (a, b))])
        assert contained_in(with_diseq, container) is not None
        assert contained_in(with_diseq, plain) is not None
        assert contained_in(plain, container) is None

    def test_unsatisfiable_query_vacuously_contained(self):
        x, u = V("x"), V("u")
        absurd = cq(
            "Q",
            [x],
            [RelationalAtom("R", (x,))],
            null_vars=frozenset([x]),
            nonnull_vars=frozenset([x]),
        )
        anything = cq("Q", [u], [RelationalAtom("R", (u,))])
        witness = contained_in(absurd, anything)
        assert witness is not None and witness.kind == "vacuous"
        assert "vacuous" in witness.render()

    def test_contradictory_disequality_is_unsatisfiable(self):
        x, u = V("x"), V("u")
        absurd = cq(
            "Q",
            [x],
            [RelationalAtom("R", (x, x))],
            disequalities=(Disequality(x, x),),
        )
        anything = cq("Q", [u], [RelationalAtom("R", (u, u))])
        witness = contained_in(absurd, anything)
        assert witness is not None and witness.kind == "vacuous"


class TestSkolemTerms:
    """Rule queries with invented-value heads (§6)."""

    def test_identical_skolem_heads(self):
        x, y = V("x"), V("y")
        r1 = Rule(
            RelationalAtom("T", (x, SkolemTerm("f", (x,)))),
            (RelationalAtom("S", (x, y)),),
        )
        u, v = V("u"), V("v")
        r2 = Rule(
            RelationalAtom("T", (u, SkolemTerm("f", (u,)))),
            (RelationalAtom("S", (u, v)),),
        )
        assert equivalent(cq_from_rule(r1), cq_from_rule(r2)) is not None

    def test_distinct_functors_not_contained(self):
        x = V("x")
        u = V("u")
        r1 = Rule(
            RelationalAtom("T", (x, SkolemTerm("f", (x,)))),
            (RelationalAtom("S", (x,)),),
        )
        r2 = Rule(
            RelationalAtom("T", (u, SkolemTerm("g", (u,)))),
            (RelationalAtom("S", (u,)),),
        )
        assert contained_in(cq_from_rule(r1), cq_from_rule(r2)) is None

    def test_skolem_argument_flow_checked(self):
        # f(x) vs f(y) over S(x,y): the invented value must be built from
        # the same frozen argument, not just any variable.
        x, y = V("x"), V("y")
        u, v = V("u"), V("v")
        r1 = Rule(
            RelationalAtom("T", (x, SkolemTerm("f", (x,)))),
            (RelationalAtom("S", (x, y)),),
        )
        r2 = Rule(
            RelationalAtom("T", (u, SkolemTerm("f", (v,)))),
            (RelationalAtom("S", (u, v)),),
        )
        assert contained_in(cq_from_rule(r1), cq_from_rule(r2)) is None

    def test_skolem_never_equals_constant_in_disequality(self):
        x, u = V("x"), V("u")
        invented = cq(
            "Q",
            [x, SkolemTerm("f", (x,))],
            [RelationalAtom("R", (x,))],
        )
        guarded = cq(
            "Q",
            [u, SkolemTerm("f", (u,))],
            [RelationalAtom("R", (u,))],
            disequalities=(Disequality(SkolemTerm("f", (u,)), Constant("a")),),
        )
        assert contained_in(invented, guarded) is not None


class TestNegation:
    def test_matching_negation_contained(self):
        x, u = V("x"), V("u")
        r1 = Rule(
            RelationalAtom("T", (x,)),
            (RelationalAtom("S", (x,)),),
            negated=(RelationalAtom("tmp", (x,)),),
        )
        r2 = Rule(
            RelationalAtom("T", (u,)),
            (RelationalAtom("S", (u,)),),
            negated=(RelationalAtom("tmp", (u,)),),
        )
        assert equivalent(cq_from_rule(r1), cq_from_rule(r2)) is not None

    def test_container_negation_must_be_required_by_contained(self):
        x, u = V("x"), V("u")
        plain = Rule(RelationalAtom("T", (x,)), (RelationalAtom("S", (x,)),))
        negating = Rule(
            RelationalAtom("T", (u,)),
            (RelationalAtom("S", (u,)),),
            negated=(RelationalAtom("tmp", (u,)),),
        )
        # The negating rule derives a subset: contained in the plain one.
        assert contained_in(cq_from_rule(negating), cq_from_rule(plain)) is not None
        # The plain rule may fire where tmp holds: not provably contained.
        assert contained_in(cq_from_rule(plain), cq_from_rule(negating)) is None


class TestReferencedAttributes:
    """Tableau queries from the modified chase of the cars scenarios."""

    @pytest.fixture(scope="class")
    def figure1_tableaux(self):
        problem = cars.figure1_problem()
        return {
            tuple(a.relation for a in t.atoms): t
            for t in logical_relations(problem.target_schema, mode=MODIFIED)
        }

    def test_chase_extension_is_rooted_containment(self, figure1_tableaux):
        # C2 chases to {C2} (p null) and to {C2, P2} (p non-null): the
        # extension is contained in the base when rooted at C2.
        base = figure1_tableaux[("C2",)]
        extension = figure1_tableaux[("C2", "P2")]
        assert contained_in(cq_from_tableau(extension), cq_from_tableau(base)) is None
        # Different null-conditions on the referencing attribute: the base
        # asserts p = null, which the extension contradicts (p != null), so
        # neither direction is provable — they partition C2.
        assert contained_in(cq_from_tableau(base), cq_from_tableau(extension)) is None

    def test_tableau_contained_in_itself_up_to_renaming(self, figure1_tableaux):
        problem = cars.figure1_problem()
        again = {
            tuple(a.relation for a in t.atoms): t
            for t in logical_relations(problem.target_schema, mode=MODIFIED)
        }
        for key, tableau in figure1_tableaux.items():
            rechased = again[key]
            assert tableau is not rechased  # distinct chase runs
            both = equivalent(cq_from_tableau(tableau), cq_from_tableau(rechased))
            assert both is not None, key


class TestEngineBehaviour:
    def test_generated_rules_self_contained(self):
        from repro.core.pipeline import MappingSystem

        system = MappingSystem(cars.figure1_problem())
        for rule in system.transformation.rules:
            query = cq_from_rule(rule)
            assert contained_in(query, query) is not None

    def test_unitary_mapping_queries(self):
        from repro.core.pipeline import MappingSystem

        system = MappingSystem(cars.figure10_problem())
        final = system.query_result().final
        queries = [cq_from_unitary(m) for m in final]
        p2a = [q for q in queries if q.head_label == "P2a"]
        # m1 (P3 -> P2a) contains m3's P2a projection (O3, C3, P3 -> P2a).
        small = min(p2a, key=lambda q: len(q.atoms))
        big = max(p2a, key=lambda q: len(q.atoms))
        assert len(big.atoms) > len(small.atoms)
        assert contained_in(big, small) is not None
        assert contained_in(small, big) is None

    def test_verdicts_are_cached_by_signature(self):
        engine = ContainmentEngine()
        x, y = V("x"), V("y")
        q1 = cq("Q", [x], [RelationalAtom("R", (x, y))])
        u, v = V("u"), V("v")
        q2 = cq("Q", [u], [RelationalAtom("R", (u, v))])
        first = engine.contained_in(q1, q2)
        size = engine.cache_size()
        second = engine.contained_in(q1, q2)
        assert first is second  # the cached witness object
        assert engine.cache_size() == size
        # A renamed copy hits the same signature entry.
        a, b = V("a"), V("b")
        q1b = cq("Q", [a], [RelationalAtom("R", (a, b))])
        engine.contained_in(q1b, q2)
        assert engine.cache_size() == size

    def test_witness_render_shape(self):
        x, y = V("x"), V("y")
        q1 = cq("Q", [x], [RelationalAtom("R", (x, y))])
        u, v = V("u"), V("v")
        q2 = cq("Q", [u], [RelationalAtom("R", (u, v))])
        witness = contained_in(q1, q2)
        assert isinstance(witness, Witness)
        text = witness.render()
        assert text.startswith("{") and "->" in text
