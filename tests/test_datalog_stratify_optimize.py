"""Tests for stratification ordering and rule-subsumption optimization."""

import pytest

from repro.datalog.optimize import remove_subsumed_rules, subsumes_rule
from repro.datalog.program import DatalogProgram, Rule
from repro.datalog.stratify import dependencies, find_recursion_cycle, stratify
from repro.errors import DatalogError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable


def V(name):
    return Variable(name)


def _rule(head, *body, negated=(), null_vars=(), nonnull_vars=()):
    return Rule(
        head=head,
        body=tuple(body),
        negated=tuple(negated),
        null_vars=tuple(null_vars),
        nonnull_vars=tuple(nonnull_vars),
    )


class TestStratify:
    def test_dependencies_ignore_base_relations(self):
        x = V("x")
        program = DatalogProgram(
            rules=[_rule(RelationalAtom("T", (x,)), RelationalAtom("Base", (x,)))]
        )
        assert dependencies(program) == {"T": set()}

    def test_tmp_before_consumer(self):
        x = V("x")
        program = DatalogProgram(
            rules=[
                _rule(
                    RelationalAtom("T", (x,)),
                    RelationalAtom("S", (x,)),
                    negated=[RelationalAtom("Tmp", (x,))],
                ),
                _rule(RelationalAtom("Tmp", (x,)), RelationalAtom("S", (x,))),
            ]
        )
        order = stratify(program)
        assert order.index("Tmp") < order.index("T")

    def test_deterministic_order(self, figure1_problem):
        from repro.core.pipeline import MappingSystem

        program = MappingSystem(figure1_problem).transformation
        orders = {tuple(stratify(program)) for _ in range(5)}
        assert len(orders) == 1
        order = next(iter(orders))
        assert order.index("P2") < order.index("C2")  # definition order kept

    def test_cycle_detected(self):
        x = V("x")
        program = DatalogProgram(
            rules=[
                _rule(RelationalAtom("A", (x,)), RelationalAtom("B", (x,))),
                _rule(RelationalAtom("B", (x,)), RelationalAtom("A", (x,))),
            ]
        )
        with pytest.raises(DatalogError):
            stratify(program)

    def test_cycle_error_names_the_closing_rule(self):
        x = V("x")
        a_from_b = _rule(RelationalAtom("A", (x,)), RelationalAtom("B", (x,)))
        b_from_a = _rule(RelationalAtom("B", (x,)), RelationalAtom("A", (x,)))
        program = DatalogProgram(rules=[a_from_b, b_from_a])
        with pytest.raises(DatalogError) as info:
            stratify(program)
        message = str(info.value)
        assert "closed by rule" in message
        assert info.value.diagnostic is not None
        assert info.value.diagnostic.code == "DLG002"

    def test_find_recursion_cycle_returns_witness(self):
        x = V("x")
        a_from_b = _rule(RelationalAtom("A", (x,)), RelationalAtom("B", (x,)))
        b_from_a = _rule(RelationalAtom("B", (x,)), RelationalAtom("A", (x,)))
        program = DatalogProgram(rules=[a_from_b, b_from_a])
        found = find_recursion_cycle(program)
        assert found is not None
        cycle, closing_rule = found
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"A", "B"}
        assert closing_rule in (a_from_b, b_from_a)
        # The witness search must not consume the program.
        assert find_recursion_cycle(program) == found

    def test_find_recursion_cycle_none_on_acyclic(self, figure1_problem):
        from repro.core.pipeline import MappingSystem

        program = MappingSystem(figure1_problem).transformation
        assert find_recursion_cycle(program) is None

    def test_self_recursion_detected(self):
        x = V("x")
        loop = _rule(RelationalAtom("A", (x,)), RelationalAtom("A", (x,)))
        program = DatalogProgram(rules=[loop])
        found = find_recursion_cycle(program)
        assert found is not None
        cycle, closing_rule = found
        assert cycle == ["A", "A"]
        assert closing_rule == loop


class TestRuleSubsumption:
    def test_smaller_body_subsumes(self):
        p, n, e = V("p"), V("n"), V("e")
        c, m = V("c"), V("m")
        p2, n2, e2 = V("p2"), V("n2"), V("e2")
        general = _rule(
            RelationalAtom("P", (p, n, e)), RelationalAtom("Ps", (p, n, e))
        )
        specific = _rule(
            RelationalAtom("P", (p2, n2, e2)),
            RelationalAtom("O", (c, p2)),
            RelationalAtom("C", (c, m)),
            RelationalAtom("Ps", (p2, n2, e2)),
        )
        assert subsumes_rule(general, specific)
        assert not subsumes_rule(specific, general)

    def test_different_heads_do_not_subsume(self):
        x = V("x")
        a = _rule(RelationalAtom("A", (x,)), RelationalAtom("S", (x,)))
        b = _rule(RelationalAtom("B", (x,)), RelationalAtom("S", (x,)))
        assert not subsumes_rule(a, b)

    def test_negation_blocks_subsumption(self):
        x = V("x")
        y = V("y")
        unguarded = _rule(RelationalAtom("T", (x,)), RelationalAtom("S", (x,)))
        guarded = _rule(
            RelationalAtom("T", (y,)),
            RelationalAtom("S", (y,)),
            negated=[RelationalAtom("N", (y,))],
        )
        # The guarded rule derives a subset: it is subsumed by the unguarded.
        assert subsumes_rule(unguarded, guarded)
        # But the unguarded rule is NOT subsumed by the guarded one.
        assert not subsumes_rule(guarded, unguarded)

    def test_matching_negations_subsume(self):
        x, y = V("x"), V("y")
        a = _rule(
            RelationalAtom("T", (x,)),
            RelationalAtom("S", (x,)),
            negated=[RelationalAtom("N", (x,))],
        )
        b = _rule(
            RelationalAtom("T", (y,)),
            RelationalAtom("S", (y,)),
            RelationalAtom("Extra", (y,)),
            negated=[RelationalAtom("N", (y,))],
        )
        assert subsumes_rule(a, b)

    def test_null_conditions_respected(self):
        x, y = V("x"), V("y")
        a2, b2 = V("a"), V("b")
        null_rule = _rule(
            RelationalAtom("T", (x,)), RelationalAtom("S", (x, y)), null_vars=[y]
        )
        plain_rule = _rule(RelationalAtom("T", (a2,)), RelationalAtom("S", (a2, b2)))
        # plain derives a superset of null_rule.
        assert subsumes_rule(plain_rule, null_rule)
        assert not subsumes_rule(null_rule, plain_rule)

    def test_remove_subsumed(self):
        x = V("x")
        y, z = V("y"), V("z")
        keep = _rule(RelationalAtom("T", (x,)), RelationalAtom("S", (x,)))
        drop = _rule(
            RelationalAtom("T", (y,)), RelationalAtom("S", (y,)), RelationalAtom("R", (y, z))
        )
        program = DatalogProgram(rules=[keep, drop])
        optimized = remove_subsumed_rules(program)
        assert optimized.rules == [keep]

    def test_exact_duplicates_keep_one(self):
        x, y = V("x"), V("y")
        a = _rule(RelationalAtom("T", (x,)), RelationalAtom("S", (x,)))
        b = _rule(RelationalAtom("T", (y,)), RelationalAtom("S", (y,)))
        program = DatalogProgram(rules=[a, b])
        optimized = remove_subsumed_rules(program)
        assert len(optimized.rules) == 1

    def test_unreferenced_tmp_dropped(self):
        x = V("x")
        tmp_rule = _rule(RelationalAtom("Tmp", (x,)), RelationalAtom("S", (x,)))
        main = _rule(RelationalAtom("T", (x,)), RelationalAtom("S", (x,)))
        program = DatalogProgram(rules=[main, tmp_rule], intermediates={"Tmp": 1})
        optimized = remove_subsumed_rules(program)
        assert optimized.rules == [main]
        assert not optimized.intermediates
