"""Tests for subsumption, implication and non-null-extension pruning."""

from repro.core.candidates import generate_candidates
from repro.core.chase import MODIFIED, logical_relations
from repro.core.pruning import (
    implies,
    prune_candidates,
    semantic_implication_witness,
    semantic_implies,
    semantic_subsumes,
    semantic_subsumption_witnesses,
    subsumes,
)
from repro.obs import Tracer, use_tracer
from repro.scenarios import cars
from repro.scenarios.appendix_a import example_a5, example_a6


def _candidates(problem):
    source = logical_relations(problem.source_schema, mode=MODIFIED)
    target = logical_relations(problem.target_schema, mode=MODIFIED)
    return generate_candidates(source, target, problem.correspondences)


def _shape(candidate):
    return (
        tuple(a.relation for a in candidate.source_tableau.atoms),
        tuple(a.relation for a in candidate.target_tableau.atoms),
        bool(candidate.target_tableau.nonnull_vars),
    )


class TestExample52:
    """Example 5.2: the pruning outcome for the Figure 1 problem."""

    def test_final_mappings(self):
        generation = _candidates(cars.figure1_problem())
        result = prune_candidates(generation.candidates)
        shapes = {_shape(c) for c in result.kept}
        assert shapes == {
            (("P3",), ("P2",), False),
            (("C3",), ("C2",), False),  # the p = null variant
            (("O3", "C3", "P3"), ("C2", "P2"), True),
        }

    def test_s2_and_s6_subsumed_by_s1(self):
        generation = _candidates(cars.figure1_problem())
        result = prune_candidates(generation.candidates)
        subsumed = [p for p in result.pruned if p.rule == "subsumption"]
        assert len(subsumed) == 2

    def test_s5_pruned_by_nonnull_extension(self):
        generation = _candidates(cars.figure1_problem())
        result = prune_candidates(generation.candidates)
        extensions = [p for p in result.pruned if p.rule == "nonnull-extension"]
        assert len(extensions) == 1
        assert "covering no more" in extensions[0].reason

    def test_nonnull_extension_can_be_disabled(self):
        generation = _candidates(cars.figure1_problem())
        result = prune_candidates(generation.candidates, use_nonnull_extension=False)
        # S5 (C3 -> C2 nonnull + P2) then survives.
        shapes = {_shape(c) for c in result.kept}
        assert (("C3",), ("C2", "P2"), True) in shapes


class TestExampleC3:
    """Example C.3: subsumption and implication with a nullable source."""

    def test_final_mapping_shapes(self):
        generation = _candidates(cars.figure14_problem())
        result = prune_candidates(generation.candidates)
        shapes = {_shape(c) for c in result.kept}
        assert shapes == {
            (("P2",), ("P3",), False),
            (("C2",), ("C3",), False),  # p = null variant
            (("C2", "P2"), ("O3", "C3", "P3"), False),
        }

    def test_s5_implied_by_s7(self):
        generation = _candidates(cars.figure14_problem())
        result = prune_candidates(generation.candidates)
        implied = [p for p in result.pruned if p.rule == "implication"]
        assert len(implied) == 1

    def test_two_subsumptions(self):
        # S1 subsumes S2 and S6; S3 subsumes S4 (paper's account).
        generation = _candidates(cars.figure14_problem())
        result = prune_candidates(generation.candidates)
        subsumed = [p for p in result.pruned if p.rule == "subsumption"]
        assert len(subsumed) == 3


class TestNonNullExtensionDirection:
    def test_a5_null_variant_pruned(self):
        # A.5: the extension covers more -> the null variant is pruned.
        generation = _candidates(example_a5())
        result = prune_candidates(generation.candidates)
        assert len(result.kept) == 1
        [kept] = result.kept
        assert tuple(a.relation for a in kept.target_tableau.atoms) == ("Pt", "PDt")
        reasons = [p for p in result.pruned if p.rule == "nonnull-extension"]
        assert any("covers strictly more" in p.reason for p in reasons)

    def test_a6_extension_pruned(self):
        # A.6: the extension covers nothing more -> the extension is pruned.
        generation = _candidates(example_a6())
        result = prune_candidates(generation.candidates)
        assert len(result.kept) == 1
        [kept] = result.kept
        assert tuple(a.relation for a in kept.target_tableau.atoms) == ("Pt",)


class TestRelationsDirectly:
    def test_subsumes_requires_equal_coverage(self):
        generation = _candidates(cars.figure1_problem())
        by_shape = {_shape(c): c for c in generation.candidates}
        s1 = by_shape[(("P3",), ("P2",), False)]
        s7 = by_shape[(("O3", "C3", "P3"), ("C2", "P2"), True)]
        assert not subsumes(s1, s7)  # V differs
        s2 = by_shape[(("O3", "C3", "P3"), ("P2",), False)]
        assert subsumes(s1, s2)
        assert not subsumes(s2, s1)

    def test_implies_requires_same_source_tableau(self):
        generation = _candidates(cars.figure14_problem())
        by_shape = {_shape(c): c for c in generation.candidates}
        s5 = by_shape[(("C2", "P2"), ("C3",), False)]
        s7 = by_shape[(("C2", "P2"), ("O3", "C3", "P3"), False)]
        assert implies(s7, s5)
        assert not implies(s5, s7)
        s3 = by_shape[(("C2",), ("C3",), False)]
        assert not implies(s7, s3)  # different source tableau


_S5_SHAPE = (("C2", "P2"), ("C3",), False)
_S7_SHAPE = (("C2", "P2"), ("O3", "C3", "P3"), False)


class TestSemanticPruning:
    """The chase-based fallbacks behind the ``semantic`` compatibility flag.

    Regression scenario: re-chasing the same problem yields isomorphic but
    *distinct* tableau objects.  The paper's syntactic implication test
    requires the identical source-tableau object, so it misses the pair;
    the containment engine decides it semantically.
    """

    def test_syntactic_implication_misses_rechased_tableaux(self):
        problem = cars.figure14_problem()
        s5 = {_shape(c): c for c in _candidates(problem).candidates}[_S5_SHAPE]
        s7 = {_shape(c): c for c in _candidates(problem).candidates}[_S7_SHAPE]
        assert s5.source_tableau is not s7.source_tableau
        assert not implies(s7, s5)  # identity test fails across chases
        assert semantic_implies(s7, s5)
        witness = semantic_implication_witness(s7, s5)
        assert witness is not None and witness.kind == "chase"

    def test_semantic_subsumption_has_two_sided_witness(self):
        generation = _candidates(cars.figure1_problem())
        by_shape = {_shape(c): c for c in generation.candidates}
        s1 = by_shape[(("P3",), ("P2",), False)]
        s2 = by_shape[(("O3", "C3", "P3"), ("P2",), False)]
        assert semantic_subsumes(s1, s2)
        witnesses = semantic_subsumption_witnesses(s1, s2)
        assert witnesses is not None
        source_side, target_side = witnesses
        assert source_side.kind == "homomorphism"
        assert target_side.kind == "homomorphism"
        # The reverse direction must have no certificate.
        assert semantic_subsumption_witnesses(s2, s1) is None

    def test_prune_candidates_semantic_flag_catches_the_pair(self):
        problem = cars.figure14_problem()
        foreign_s5 = {
            _shape(c): c for c in _candidates(problem).candidates
        }[_S5_SHAPE]
        rechased = _candidates(problem).candidates
        mixed = [
            foreign_s5 if _shape(c) == _S5_SHAPE else c for c in rechased
        ]

        syntactic = prune_candidates(mixed)
        assert _S5_SHAPE in {_shape(c) for c in syntactic.kept}  # missed

        with use_tracer(Tracer()) as tracer:
            semantic = prune_candidates(mixed, semantic=True)
        kept_shapes = {_shape(c) for c in semantic.kept}
        assert _S5_SHAPE not in kept_shapes
        assert kept_shapes == {
            (("P2",), ("P3",), False),
            (("C2",), ("C3",), False),
            (("C2", "P2"), ("O3", "C3", "P3"), False),
        }
        record = next(
            p for p in semantic.pruned if p.name == foreign_s5.name
        )
        assert record.rule == "implication"
        assert "(semantic)" in record.reason
        assert tracer.counters["prune.semantic"] >= 1

    def test_semantic_flag_is_a_no_op_on_the_paper_scenarios(self):
        for problem in (cars.figure1_problem(), cars.figure14_problem()):
            plain = prune_candidates(_candidates(problem).candidates)
            flagged = prune_candidates(
                _candidates(problem).candidates, semantic=True
            )
            assert {_shape(c) for c in plain.kept} == {
                _shape(c) for c in flagged.kept
            }
