"""Tests for the congruence-closure satisfiability engine.

These checks back the functionality test and the key-conflict test of
Algorithm 4, so the axioms (Skolem injectivity, disjoint functor ranges,
invented values distinct from source values, null semantics, key fds) are
each exercised.
"""

from repro.logic.atoms import RelationalAtom
from repro.logic.satisfiability import SAT, UNSAT, TermSolver, check_equal_and_differ
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder


def V(name):
    return Variable(name)


class TestTermSolver:
    def test_basic_union(self):
        solver = TermSolver()
        x, y, z = V("x"), V("y"), V("z")
        solver.assert_equal(x, y)
        solver.assert_equal(y, z)
        assert solver.equal(x, z)
        assert not solver.clashed

    def test_distinct_constants_clash(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_equal(x, Constant("a"))
        solver.assert_equal(x, Constant("b"))
        assert solver.clashed

    def test_same_constant_no_clash(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_equal(x, Constant("a"))
        solver.assert_equal(x, Constant("a"))
        assert not solver.clashed

    def test_null_vs_constant_clash(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_null(x)
        solver.assert_equal(x, Constant("a"))
        assert solver.clashed

    def test_null_vs_nonnull_clash(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_nonnull(x)
        solver.assert_null(x)
        assert solver.clashed

    def test_skolem_vs_variable_clash(self):
        # Invented values are distinct from every source value (paper sec. 6).
        solver = TermSolver()
        x, y = V("x"), V("y")
        solver.assert_equal(x, SkolemTerm("f", [y]))
        assert solver.clashed

    def test_skolem_vs_constant_clash(self):
        solver = TermSolver()
        solver.assert_equal(SkolemTerm("f", []), Constant("a"))
        assert solver.clashed

    def test_skolem_vs_null_clash(self):
        solver = TermSolver()
        solver.assert_equal(SkolemTerm("f", []), NULL_TERM)
        assert solver.clashed

    def test_different_functors_clash(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_equal(SkolemTerm("f", [x]), SkolemTerm("g", [x]))
        assert solver.clashed

    def test_injectivity_decomposes_args(self):
        solver = TermSolver()
        x, y = V("x"), V("y")
        solver.assert_equal(SkolemTerm("f", [x]), SkolemTerm("f", [y]))
        assert not solver.clashed
        assert solver.equal(x, y)

    def test_congruence_merges_applications(self):
        solver = TermSolver()
        x, y = V("x"), V("y")
        fx, fy = SkolemTerm("f", [x]), SkolemTerm("f", [y])
        solver.find(fx)
        solver.find(fy)
        solver.assert_equal(x, y)
        assert solver.equal(fx, fy)

    def test_nested_congruence(self):
        solver = TermSolver()
        x, y = V("x"), V("y")
        gfx = SkolemTerm("g", [SkolemTerm("f", [x])])
        gfy = SkolemTerm("g", [SkolemTerm("f", [y])])
        solver.find(gfx)
        solver.find(gfy)
        solver.assert_equal(x, y)
        assert solver.equal(gfx, gfy)

    def test_key_fd_chase(self):
        schema = SchemaBuilder("s").relation("R", "k", "v").build()
        solver = TermSolver()
        k1, v1, k2, v2 = V("k1"), V("v1"), V("k2"), V("v2")
        atoms = [RelationalAtom("R", (k1, v1)), RelationalAtom("R", (k2, v2))]
        solver.assert_equal(k1, k2)
        solver.chase_keys(atoms, schema)
        assert solver.equal(v1, v2)

    def test_key_fd_chase_composite(self):
        schema = SchemaBuilder("s").relation("R", "a", "b", "v", key=["a", "b"]).build()
        solver = TermSolver()
        a1, b1, v1 = V("a1"), V("b1"), V("v1")
        a2, b2, v2 = V("a2"), V("b2"), V("v2")
        atoms = [RelationalAtom("R", (a1, b1, v1)), RelationalAtom("R", (a2, b2, v2))]
        solver.assert_equal(a1, a2)
        solver.chase_keys(atoms, schema)
        assert not solver.equal(v1, v2)  # keys agree only on a
        solver.assert_equal(b1, b2)
        solver.chase_keys(atoms, schema)
        assert solver.equal(v1, v2)


class TestCheckEqualAndDiffer:
    def _schema(self):
        return (
            SchemaBuilder("s")
            .relation("R", "k", "v", "w?")
            .build()
        )

    def test_forced_equal_is_unsat(self):
        schema = self._schema()
        k1, v1, w1 = V("k1"), V("v1"), V("w1")
        k2, v2, w2 = V("k2"), V("v2"), V("w2")
        atoms = [RelationalAtom("R", (k1, v1, w1)), RelationalAtom("R", (k2, v2, w2))]
        # Same key forces same v by the key fd.
        assert (
            check_equal_and_differ(atoms, schema, [(k1, k2)], (v1, v2)) is UNSAT
        )

    def test_unconstrained_can_differ(self):
        schema = self._schema()
        k1, v1, w1 = V("k1"), V("v1"), V("w1")
        k2, v2, w2 = V("k2"), V("v2"), V("w2")
        atoms = [RelationalAtom("R", (k1, v1, w1)), RelationalAtom("R", (k2, v2, w2))]
        assert check_equal_and_differ(atoms, schema, [], (v1, v2)) is SAT

    def test_mandatory_position_cannot_be_null(self):
        schema = self._schema()
        k, v, w = V("k"), V("v"), V("w")
        atoms = [RelationalAtom("R", (k, v, w))]
        # v = null contradicts v being in a mandatory position.
        assert (
            check_equal_and_differ(atoms, schema, [(v, NULL_TERM)], (k, V("z")))
            is UNSAT
        )

    def test_nullable_position_can_be_null(self):
        schema = self._schema()
        k, v, w = V("k"), V("v"), V("w")
        atoms = [RelationalAtom("R", (k, v, w))]
        assert (
            check_equal_and_differ(atoms, schema, [(w, NULL_TERM)], (k, V("z")))
            is SAT
        )

    def test_null_condition_conflicts_with_nonnull(self):
        schema = self._schema()
        k, v, w = V("k"), V("v"), V("w")
        atoms = [RelationalAtom("R", (k, v, w))]
        assert (
            check_equal_and_differ(
                atoms, schema, [], (k, V("z")), null_terms=[w], nonnull_terms=[w]
            )
            is UNSAT
        )

    def test_null_vs_null_cannot_differ(self):
        schema = self._schema()
        k, v, w = V("k"), V("v"), V("w")
        atoms = [RelationalAtom("R", (k, v, w))]
        assert (
            check_equal_and_differ(atoms, schema, [], (NULL_TERM, NULL_TERM))
            is UNSAT
        )

    def test_skolem_key_equality_unsat_with_variable(self):
        # A mapping whose key is invented never conflicts with one whose key
        # is copied (paper Example 6.3).
        schema = self._schema()
        k1, v1, w1 = V("k1"), V("v1"), V("w1")
        k2, v2, w2 = V("k2"), V("v2"), V("w2")
        atoms = [RelationalAtom("R", (k1, v1, w1)), RelationalAtom("R", (k2, v2, w2))]
        skolem = SkolemTerm("f", [v1])
        assert (
            check_equal_and_differ(atoms, schema, [(skolem, k2)], (v1, v2)) is UNSAT
        )

    def test_same_functor_keys_decompose(self):
        schema = self._schema()
        k1, v1, w1 = V("k1"), V("v1"), V("w1")
        k2, v2, w2 = V("k2"), V("v2"), V("w2")
        atoms = [RelationalAtom("R", (k1, v1, w1)), RelationalAtom("R", (k2, v2, w2))]
        # f(k1) = f(k2) forces k1 = k2, and the key fd then forces v1 = v2.
        assert (
            check_equal_and_differ(
                atoms,
                schema,
                [(SkolemTerm("f", [k1]), SkolemTerm("f", [k2]))],
                (v1, v2),
            )
            is UNSAT
        )
