"""Tests for reverse problems and round-trip checks (paper section 8)."""

import pytest

from repro.core.bidirectional import check_round_trip, reverse_problem
from repro.core.pipeline import MappingSystem
from repro.errors import MappingGenerationError
from repro.scenarios import cars
from repro.scenarios.synthetic import cars2_instance


class TestReverseProblem:
    def test_figure14_reverses_to_a_figure1_like_problem(self):
        problem = cars.figure14_problem()  # CARS2 -> CARS3
        reverse = reverse_problem(problem)
        assert reverse.source_schema.name == "CARS3"
        assert reverse.target_schema.name == "CARS2"
        assert len(reverse.correspondences) == len(problem.correspondences)
        flipped = reverse.correspondences[0]
        assert repr(flipped.source) == "P3.person"
        assert repr(flipped.target) == "P2.person"
        assert flipped.label == "p1^-1"

    def test_ra_correspondence_cannot_reverse(self):
        with pytest.raises(MappingGenerationError):
            reverse_problem(cars.figure4_ra_problem())

    def test_filtered_correspondence_cannot_reverse(self):
        from repro.core.pipeline import MappingProblem
        from repro.model.builder import SchemaBuilder

        source = SchemaBuilder("s").relation("A", "k", "v").build()
        target = SchemaBuilder("t").relation("B", "k", "v").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "B.k")
        problem.add_correspondence("A.v", "B.v", where="A.v = 'x'")
        with pytest.raises(MappingGenerationError):
            reverse_problem(problem)

    def test_reverse_problem_validates(self):
        reverse = reverse_problem(cars.figure14_problem())
        reverse.validate()


class TestRoundTrip:
    def test_cars2_roundtrip_is_lossless(self):
        problem = cars.figure14_problem()
        source = cars.figure15_source_instance()
        report = check_round_trip(problem, source)
        assert report.restored
        assert "lossless" in report.summary()
        assert report.back == source

    def test_cars2_roundtrip_lossless_at_scale(self):
        problem = cars.figure14_problem()
        source = cars2_instance(n_persons=40, n_cars=120, seed=3)
        assert check_round_trip(problem, source).restored

    def test_lossy_roundtrip_reported(self):
        # Forward CARS3 -> CARS2 loses nothing here either, but dropping a
        # correspondence makes the trip lossy: emails vanish.
        problem = cars.figure1_problem()
        problem.correspondences = [
            c for c in problem.correspondences if c.label != "p3"  # drop email
        ]
        source = cars.cars3_source_instance()
        report = check_round_trip(problem, source)
        assert not report.restored
        assert "P3" in report.diff.changed_relations()
        assert "loses information" in report.summary()

    def test_forward_result_available(self):
        problem = cars.figure14_problem()
        source = cars.figure15_source_instance()
        report = check_round_trip(problem, source)
        assert report.forward == MappingSystem(problem).transform(source)
