"""Tests for the MappingSystem facade and MappingProblem."""

import pytest

from repro.core.pipeline import MappingProblem, MappingSystem
from repro.core.schema_mapping import BASIC
from repro.errors import CorrespondenceError
from repro.model.builder import SchemaBuilder
from repro.scenarios import cars


class TestMappingProblem:
    def test_add_correspondence_validates(self, cars3, cars2):
        problem = MappingProblem(cars3, cars2)
        problem.add_correspondence("P3.name", "P2.name")
        with pytest.raises(CorrespondenceError):
            problem.add_correspondence("P3.ghost", "P2.name")
        assert len(problem.correspondences) == 1

    def test_validate_checks_schemas(self):
        bad = (
            SchemaBuilder("bad")
            .relation("E", "id", "m")
            .foreign_key("E", "m", "E")
            .build(validate=False)
        )
        good = SchemaBuilder("ok").relation("T", "id").build()
        problem = MappingProblem(bad, good)
        from repro.errors import WeakAcyclicityError

        with pytest.raises(WeakAcyclicityError):
            problem.validate()


class TestMappingSystem:
    def test_results_cached(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        assert system.schema_mapping_result() is system.schema_mapping_result()
        assert system.query_result() is system.query_result()

    def test_transform_matches_expected_figure3(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        assert system.transform(cars3_instance) == cars.figure3_expected_target()

    def test_transform_detailed_exposes_intermediates(
        self, figure1_problem, cars3_instance
    ):
        system = MappingSystem(figure1_problem)
        result = system.transform_detailed(cars3_instance)
        assert result.intermediate("OCtmp") == [("c85",)]

    def test_basic_and_novel_differ(self, figure1_problem, cars3_instance):
        novel = MappingSystem(figure1_problem)
        basic = MappingSystem(figure1_problem, algorithm=BASIC)
        assert novel.transform(cars3_instance) != basic.transform(cars3_instance)

    def test_custom_skolem_strategy(self, figure1_problem, cars3_instance):
        from repro.core.skolem import ALL_SOURCE_VARS

        system = MappingSystem(figure1_problem, skolem_strategy=ALL_SOURCE_VARS)
        # Still produces the desirable result: the only invented values would
        # appear in C2.person, but the null policy removes them.
        assert system.transform(cars3_instance) == cars.figure3_expected_target()

    def test_empty_source_gives_empty_target(self, figure1_problem):
        from repro.model.instance import Instance

        system = MappingSystem(figure1_problem)
        result = system.transform(Instance(figure1_problem.source_schema))
        assert result.total_size() == 0
