"""Tests for Datalog rules and programs: safety, validation."""

import pytest

from repro.datalog.program import DatalogProgram, Rule
from repro.errors import DatalogError
from repro.logic.atoms import Equality, RelationalAtom
from repro.logic.terms import Constant, Variable
from repro.model.builder import SchemaBuilder


def V(name):
    return Variable(name)


def _simple_schema():
    return SchemaBuilder("t").relation("T", "k", "v").build()


class TestSafety:
    def test_safe_rule(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x, y)),
            body=(RelationalAtom("S", (x, y)),),
        )
        rule.check_safety()  # no exception

    def test_unbound_head_variable(self):
        x, y = V("x"), V("y")
        rule = Rule(head=RelationalAtom("T", (x, y)), body=(RelationalAtom("S", (x,)),))
        with pytest.raises(DatalogError):
            rule.check_safety()

    def test_unbound_negated_variable(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("S", (x,)),),
            negated=(RelationalAtom("N", (y,)),),
        )
        with pytest.raises(DatalogError):
            rule.check_safety()

    def test_unbound_condition_variable(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("S", (x,)),),
            null_vars=(y,),
        )
        with pytest.raises(DatalogError):
            rule.check_safety()

    def test_unbound_equality_variable(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("S", (x,)),),
            equalities=(Equality(x, y),),
        )
        with pytest.raises(DatalogError):
            rule.check_safety()

    def test_constants_in_head_are_safe(self):
        x = V("x")
        rule = Rule(
            head=RelationalAtom("T", (x, Constant("c"))),
            body=(RelationalAtom("S", (x,)),),
        )
        rule.check_safety()


class TestProgramValidation:
    def test_negated_relation_must_be_defined(self):
        x = V("x")
        program = DatalogProgram(
            rules=[
                Rule(
                    head=RelationalAtom("T", (x, x)),
                    body=(RelationalAtom("S", (x,)),),
                    negated=(RelationalAtom("Ghost", (x,)),),
                )
            ],
            target_schema=_simple_schema(),
        )
        with pytest.raises(DatalogError):
            program.validate()

    def test_recursion_rejected(self):
        x, y = V("x"), V("y")
        program = DatalogProgram(
            rules=[
                Rule(
                    head=RelationalAtom("T", (x, y)),
                    body=(RelationalAtom("T", (y, x)),),
                )
            ],
            target_schema=_simple_schema(),
        )
        with pytest.raises(DatalogError):
            program.validate()

    def test_mutual_recursion_rejected(self):
        x = V("x")
        y = V("y")
        program = DatalogProgram(
            rules=[
                Rule(head=RelationalAtom("A", (x,)), body=(RelationalAtom("B", (x,)),)),
                Rule(head=RelationalAtom("B", (y,)), body=(RelationalAtom("A", (y,)),)),
            ]
        )
        with pytest.raises(DatalogError):
            program.validate()

    def test_helpers(self):
        x = V("x")
        rule_a = Rule(head=RelationalAtom("T", (x, x)), body=(RelationalAtom("S", (x,)),))
        rule_b = Rule(head=RelationalAtom("U", (x,)), body=(RelationalAtom("S", (x,)),))
        program = DatalogProgram(rules=[rule_a, rule_b], intermediates={"U": 1})
        assert program.defined_relations() == ["T", "U"]
        assert program.rules_for("T") == [rule_a]
        assert program.target_rules() == [rule_a]
        assert len(program) == 2
