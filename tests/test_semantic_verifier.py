"""The differential optimizer verifier, always-on over every bundled scenario."""

import pytest

from repro.analysis.semantic.verifier import (
    VerificationReport,
    canonical_instances,
    verify_system,
)
from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.datalog.program import DatalogProgram, Rule
from repro.errors import ReproError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.model.builder import SchemaBuilder
from repro.scenarios import bundled_problems, cars

SCENARIOS = sorted(bundled_problems())


@pytest.mark.parametrize("name", SCENARIOS)
def test_every_bundled_scenario_certifies(name):
    system = MappingSystem(bundled_problems()[name])
    report = verify_system(system)
    assert report.checks, name  # something was actually certified
    assert report.ok, [c.detail for c in report.failures()]
    assert report.diagnostics == []


@pytest.mark.parametrize("name", ["figure-1", "figure-10", "figure-14"])
def test_basic_algorithm_certifies(name):
    system = MappingSystem(bundled_problems()[name], algorithm=BASIC)
    report = verify_system(system)
    assert report.ok, [c.detail for c in report.failures()]


class TestPipelineFlag:
    def test_verify_optimizations_passes_and_caches(self):
        system = MappingSystem(cars.figure1_problem(), verify_optimizations=True)
        system.query_result()  # runs the verifier, raising on failure
        report = system.verify()
        assert report.ok
        assert system.verify() is report  # cached

    def test_verify_without_flag_is_lazy(self):
        system = MappingSystem(cars.figure1_problem())
        system.query_result()
        assert system._verification_report is None
        report = system.verify()
        assert report.ok and report.problem == "figure-1"

    def test_cache_invalidated_on_problem_mutation(self):
        problem = cars.figure1_problem()
        system = MappingSystem(problem)
        first = system.verify()
        problem.add_correspondence("C3.car", "C2.car", "extra")
        second = system.verify()
        assert second is not first


class TestCanonicalInstances:
    def test_per_rule_and_union_instances(self):
        system = MappingSystem(cars.figure1_problem())
        program = system.query_result().program
        labeled = canonical_instances(program)
        labels = [label for label, _ in labeled]
        assert labels[-1] == "union"
        assert len(labeled) == len(program.rules) + 1
        for _, instance in labeled:
            # Canonical instances only populate source relations.
            populated = {name for name, relation in instance.relations.items()
                         if relation.rows}
            assert populated <= set(program.source_schema.relation_names())

    def test_null_conditioned_variable_freezes_to_null(self):
        from repro.model.values import NULL

        # Figure 14 maps CARS2 back to CARS3; its C3 rule requires p = null.
        system = MappingSystem(cars.figure14_problem())
        program = system.query_result().program
        nulled = [
            (i, rule) for i, rule in enumerate(program.rules) if rule.null_vars
        ]
        assert nulled
        index, rule = nulled[0]
        labeled = dict(canonical_instances(program))
        instance = labeled[f"rule[{index}]:{rule.head_relation}"]
        assert any(
            NULL in row
            for relation in instance.relations.values()
            for row in relation.rows
        )


class TestFailureDetection:
    def test_broken_optimizer_is_caught(self, monkeypatch):
        """Dropping a non-redundant rule must produce SEM003 failures."""
        import repro.analysis.semantic.verifier as verifier_module

        def lobotomized(program):
            # "Optimize" by discarding the C2 rules — semantics change.
            kept = [r for r in program.rules if r.head_relation != "C2"]
            return DatalogProgram(
                rules=kept,
                source_schema=program.source_schema,
                target_schema=program.target_schema,
                intermediates=dict(program.intermediates),
            )

        monkeypatch.setattr(
            verifier_module, "remove_subsumed_rules", lobotomized
        )
        system = MappingSystem(cars.figure1_problem())
        report = verify_system(system)
        assert not report.ok
        assert any(d.code == "SEM003" for d in report.diagnostics)

    def test_pipeline_flag_raises_on_failure(self, monkeypatch):
        import repro.analysis.semantic.verifier as verifier_module

        def lobotomized(program):
            kept = [r for r in program.rules if r.head_relation != "C2"]
            return DatalogProgram(
                rules=kept,
                source_schema=program.source_schema,
                target_schema=program.target_schema,
                intermediates=dict(program.intermediates),
            )

        monkeypatch.setattr(
            verifier_module, "remove_subsumed_rules", lobotomized
        )
        system = MappingSystem(cars.figure1_problem(), verify_optimizations=True)
        with pytest.raises(ReproError) as excinfo:
            system.query_result()
        assert "SEM003" in str(excinfo.value)
        assert excinfo.value.diagnostic is not None
