"""Edge cases and regression tests across the pipeline."""

import pytest

from repro.core.pipeline import MappingProblem, MappingSystem
from repro.core.schema_mapping import generate_schema_mapping
from repro.errors import SchemaError
from repro.model.builder import SchemaBuilder
from repro.model.instance import Instance, instance_from_dict
from repro.model.values import NULL
from repro.scenarios import cars


class TestEmptyAndDegenerate:
    def test_no_correspondences_gives_empty_mapping(self, cars3, cars2):
        problem = MappingProblem(cars3, cars2)
        system = MappingSystem(problem)
        assert len(system.schema_mapping) == 0
        assert len(system.transformation.rules) == 0
        source = cars.cars3_source_instance()
        assert system.transform(source).total_size() == 0

    def test_single_attribute_relations(self):
        source = SchemaBuilder("s").relation("A", "k").build()
        target = SchemaBuilder("t").relation("B", "k").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "B.k")
        system = MappingSystem(problem)
        instance = instance_from_dict(source, {"A": [("x",), ("y",)]})
        assert set(system.transform(instance).relation("B").rows) == {("x",), ("y",)}

    def test_self_join_source(self):
        # Two correspondences from the same source relation attribute.
        source = SchemaBuilder("s").relation("A", "k", "v").build()
        target = SchemaBuilder("t").relation("B", "k", "v1", "v2").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "B.k")
        problem.add_correspondence("A.v", "B.v1")
        problem.add_correspondence("A.v", "B.v2")
        system = MappingSystem(problem)
        instance = instance_from_dict(source, {"A": [("x", "7")]})
        assert set(system.transform(instance).relation("B").rows) == {("x", "7", "7")}

    def test_shared_relation_names_rejected(self):
        schema_a = SchemaBuilder("a").relation("R", "k").build()
        schema_b = SchemaBuilder("b").relation("R", "k").build()
        problem = MappingProblem(schema_a, schema_b)
        with pytest.raises(SchemaError):
            problem.validate()

    def test_empty_source_relations(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        source = Instance(figure1_problem.source_schema)
        source.add("C3", ("c1", "Ford"))  # a car, but no persons/owners
        output = system.transform(source)
        assert set(output.relation("C2").rows) == {("c1", "Ford", NULL)}
        assert len(output.relation("P2")) == 0


class TestRegressionStratifyDeterminism:
    def test_sql_statement_order_stable(self, figure1_problem, cars3_instance):
        """Regression: dependencies() once built its graph from a set, making
        SQL statement order hash-dependent and FK-enforced loads flaky."""
        from repro.sqlgen.queries import program_to_sql

        program = MappingSystem(figure1_problem).transformation
        orders = {tuple(program_to_sql(program)) for _ in range(10)}
        assert len(orders) == 1
        statements = next(iter(orders))
        p2_index = next(i for i, s in enumerate(statements) if '"P2"' in s)
        c2_index = next(i for i, s in enumerate(statements) if 'INTO "C2"' in s)
        assert p2_index < c2_index  # FK target loaded first


class TestNullSemantics:
    def test_two_null_owners_are_one_value(self):
        """Two ownerless cars share the null — joins treat null as a value."""
        problem = cars.figure14_problem()
        system = MappingSystem(problem)
        source = instance_from_dict(
            problem.source_schema,
            {"C2": [("c1", "Ford", NULL), ("c2", "Opel", NULL)]},
        )
        output = system.transform(source)
        assert len(output.relation("C3")) == 2
        assert len(output.relation("O3")) == 0

    def test_null_not_copied_into_mandatory_key(self):
        # A null FK never reaches O3 (whose attributes are mandatory).
        problem = cars.figure14_problem()
        system = MappingSystem(problem)
        source = cars.figure15_source_instance()
        output = system.transform(source)
        from repro.model.validation import validate_instance

        assert validate_instance(output).ok


class TestCorrespondenceIntoKeyFromNullable:
    def test_non_key_source_into_target_key_is_rejected(self):
        """A non-key source attribute feeding a target key is not functional:
        two source tuples can share the value — Algorithm 4 must "signal an
        error and stop" (the functionality check)."""
        from repro.errors import NonFunctionalMappingError

        source = SchemaBuilder("s").relation("A", "k", "v?").build()
        target = SchemaBuilder("t").relation("B", "v", "k2").build()  # key = v
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.v", "B.v")
        problem.add_correspondence("A.k", "B.k2")
        with pytest.raises(NonFunctionalMappingError):
            MappingSystem(problem).transformation

    def test_key_source_into_target_key_is_functional(self):
        """Copying a source *key* into the target key is fine."""
        source = SchemaBuilder("s").relation("A", "k", "v?").build()
        target = SchemaBuilder("t").relation("B", "k", "v?").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "B.k")
        problem.add_correspondence("A.v", "B.v")
        system = MappingSystem(problem)
        instance = instance_from_dict(source, {"A": [("x", "7"), ("y", NULL)]})
        output = system.transform(instance)
        assert set(output.relation("B").rows) == {("x", "7"), ("y", NULL)}


class TestMultipleFKsToSameRelation:
    def test_two_paths_to_one_relation(self):
        """A source relation with two FKs into the same relation: both paths
        produce distinct atoms and both referenced attributes are usable."""
        source = (
            SchemaBuilder("s")
            .relation("P", "pid", "name")
            .relation("Match", "mid", "home", "away")
            .foreign_key("Match", "home", "P")
            .foreign_key("Match", "away", "P")
            .build()
        )
        target = (
            SchemaBuilder("t")
            .relation("Game", "mid", "home_name", "away_name")
            .build()
        )
        problem = MappingProblem(source, target)
        problem.add_correspondence("Match.mid", "Game.mid")
        problem.add_correspondence("Match.home > P.name", "Game.home_name")
        problem.add_correspondence("Match.away > P.name", "Game.away_name")
        system = MappingSystem(problem)
        instance = instance_from_dict(
            source,
            {
                "P": [("p1", "Ada"), ("p2", "Alan")],
                "Match": [("m1", "p1", "p2"), ("m2", "p2", "p2")],
            },
        )
        output = system.transform(instance)
        assert set(output.relation("Game").rows) == {
            ("m1", "Ada", "Alan"),
            ("m2", "Alan", "Alan"),
        }


class TestGeneratedProgramsAreValid:
    @pytest.mark.parametrize("name", sorted(cars.all_problems()))
    def test_every_figure_program_validates(self, name):
        problem = cars.all_problems()[name]
        for algorithm in ("basic", "novel"):
            program = MappingSystem(problem, algorithm=algorithm).transformation
            program.validate()
