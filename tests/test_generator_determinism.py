"""Cross-process determinism of the generator and the eval matrix.

The replay contract (``repro eval --seed N --replay``) only holds if a seed
produces byte-identical artifacts in a *fresh* process — not just within
one.  The generator seeds :class:`random.Random` with strings (hashed with
sha512, independent of ``PYTHONHASHSEED``), and ``EvalRow.stable_dict()``
excludes wall-clock timings; this test pins both claims by running two
subprocesses with different hash seeds and comparing the DSL text, the
rendered Datalog plan, and the eval-matrix row JSON.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SCRIPT = """
import json
from repro.bench.evalmatrix import eval_scenario
from repro.core.pipeline import MappingSystem
from repro.dsl import render_program
from repro.scenarios.generator import generate_scenario

artifacts = {}
for seed in (0, 7, 23):
    scenario = generate_scenario(seed)
    system = MappingSystem(scenario.problem)
    artifacts[str(seed)] = {
        "dsl": scenario.dsl,
        "instance": scenario.instance_text,
        "plan": render_program(system.transformation),
        "row": eval_scenario(seed, duckdb=False).stable_dict(),
    }
print(json.dumps(artifacts, sort_keys=True))
"""


def _run(hash_seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO / "src")
    result = subprocess.run(
        [sys.executable, "-c", SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        check=True,
    )
    return json.loads(result.stdout)


def test_artifacts_identical_across_fresh_processes():
    """Two processes, two hash seeds — same DSL, plan, and eval row."""
    first = _run("1")
    second = _run("4242")
    assert first == second
    # the row really carries verdicts, not just an error shell
    for seed, artifact in first.items():
        assert artifact["row"]["status"] == "ok", (seed, artifact["row"])
