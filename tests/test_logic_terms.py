"""Tests for terms: variables, constants, Skolem terms, substitution."""

from repro.logic.terms import (
    NULL_TERM,
    Constant,
    NullTerm,
    SkolemTerm,
    Variable,
    VariableFactory,
    is_null_term,
    is_skolem,
    is_variable,
    term_variables,
)


class TestVariable:
    def test_identity_semantics(self):
        a, b = Variable("x"), Variable("x")
        assert a is not b
        assert a != b or a is b  # distinct objects are distinct variables
        assert len({a, b}) == 2

    def test_ordering_by_creation(self):
        a, b = Variable("x"), Variable("y")
        assert a < b

    def test_substitution(self):
        x, y = Variable("x"), Variable("y")
        assert x.substitute({x: y}) is y
        assert x.substitute({}) is x

    def test_variables_iterator(self):
        x = Variable("x")
        assert list(x.variables()) == [x]


class TestConstant:
    def test_value_equality(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_no_variables(self):
        assert list(Constant("a").variables()) == []

    def test_substitution_is_identity(self):
        c = Constant("a")
        assert c.substitute({Variable("x"): Variable("y")}) is c


class TestNullTerm:
    def test_singleton(self):
        assert NullTerm() is NULL_TERM

    def test_repr(self):
        assert repr(NULL_TERM) == "null"

    def test_predicate(self):
        assert is_null_term(NULL_TERM)
        assert not is_null_term(Variable("x"))


class TestSkolemTerm:
    def test_structural_equality(self):
        x = Variable("x")
        assert SkolemTerm("f", [x]) == SkolemTerm("f", [x])
        assert SkolemTerm("f", [x]) != SkolemTerm("g", [x])

    def test_variables_found_recursively(self):
        x, y = Variable("x"), Variable("y")
        nested = SkolemTerm("f", [SkolemTerm("g", [x]), y])
        assert list(nested.variables()) == [x, y]

    def test_substitution_recurses(self):
        x, y = Variable("x"), Variable("y")
        term = SkolemTerm("f", [SkolemTerm("g", [x])])
        result = term.substitute({x: y})
        assert result == SkolemTerm("f", [SkolemTerm("g", [y])])

    def test_rename_functors(self):
        x = Variable("x")
        term = SkolemTerm("f", [SkolemTerm("g", [x])])
        renamed = term.rename_functors({"f": "F", "g": "G"})
        assert renamed.functor == "F"
        assert renamed.args[0].functor == "G"

    def test_predicate(self):
        assert is_skolem(SkolemTerm("f", []))
        assert not is_skolem(Variable("x"))
        assert is_variable(Variable("x"))


class TestVariableFactory:
    def test_unique_names(self):
        factory = VariableFactory()
        a = factory.fresh("p")
        b = factory.fresh("p")
        assert a.name == "p"
        assert b.name == "p1"

    def test_attribute_initial(self):
        factory = VariableFactory()
        assert factory.fresh_for_attribute("person").name == "p"
        assert factory.fresh_for_attribute("model").name == "m"

    def test_prefix(self):
        factory = VariableFactory(prefix="t_")
        assert factory.fresh("x").name == "t_x"


def test_term_variables_dedup_order():
    x, y = Variable("x"), Variable("y")
    terms = [SkolemTerm("f", [x, y]), x, Constant("c")]
    assert term_variables(terms) == [x, y]
