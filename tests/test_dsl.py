"""Tests for the text DSL (parser) and the paper-style renderer."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.dsl.parser import parse_instance, parse_problem, parse_schema
from repro.dsl.renderer import (
    FunctorAbbreviator,
    render_program,
    render_schema,
    render_schema_mapping,
)
from repro.errors import ParseError
from repro.model.values import NULL

PROBLEM_TEXT = """
# The Figure 1 problem, as text.
source schema CARS3:
  relation P3 (person key, name, email)
  relation C3 (car key, model)
  relation O3 (car key -> C3, person -> P3)

target schema CARS2:
  relation P2 (person key, name, email)
  relation C2 (car key, model, person? -> P2)

correspondences:
  P3.person -> P2.person [p1]
  P3.name -> P2.name [p2]
  P3.email -> P2.email [p3]
  C3.car -> C2.car [c1]
  C3.model -> C2.model [c2]
  O3.car -> C2.car [o1]
  O3.person -> C2.person [o2]
"""


class TestParseProblem:
    def test_full_problem(self):
        problem = parse_problem(PROBLEM_TEXT)
        assert problem.source_schema.name == "CARS3"
        assert problem.target_schema.relation("C2").is_nullable("person")
        assert problem.target_schema.foreign_key_from("C2", "person").referenced == "P2"
        assert len(problem.correspondences) == 7
        assert problem.correspondences[0].label == "p1"

    def test_parsed_problem_runs_pipeline(self, cars3_instance):
        from repro.scenarios.cars import figure3_expected_target

        problem = parse_problem(PROBLEM_TEXT)
        system = MappingSystem(problem)
        assert system.transform(cars3_instance) == figure3_expected_target()

    def test_referenced_attribute_correspondence(self):
        text = """
        source schema S:
          relation O (car key, person -> P)
          relation P (person key, name)
        target schema T:
          relation C (car key, name?)
        correspondences:
          O.car -> C.car
          O.person > P.name -> C.name [cn']
        """
        problem = parse_problem(text)
        assert problem.correspondences[1].label == "cn'"
        assert not problem.correspondences[1].source.is_plain

    def test_missing_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_problem("correspondences:\n A.x -> B.y")

    def test_duplicate_role_rejected(self):
        with pytest.raises(ParseError):
            parse_problem(
                "source schema A:\n relation R (k)\nsource schema B:\n relation S (k)"
            )

    def test_relation_outside_section(self):
        with pytest.raises(ParseError) as error:
            parse_problem("relation R (k)")
        assert "line 1" in str(error.value)

    def test_bad_correspondence_line(self):
        text = PROBLEM_TEXT + "\n  just nonsense\n"
        with pytest.raises(ParseError):
            parse_problem(text)

    def test_invalid_correspondence_reported_with_line(self):
        text = PROBLEM_TEXT + "  P3.ghost -> P2.name\n"
        with pytest.raises(ParseError) as error:
            parse_problem(text)
        assert "ghost" in str(error.value)


class TestParseSchema:
    def test_standalone_schema(self):
        schema = parse_schema(
            "relation P (person key, name, email?)\n"
            "relation C (car key, person? -> P)"
        )
        assert schema.relation("P").is_nullable("email")
        assert schema.foreign_key_from("C", "person") is not None

    def test_composite_key(self):
        schema = parse_schema("relation E (course key, student key, grade)")
        assert schema.relation("E").key == ("course", "student")

    def test_bad_modifier(self):
        with pytest.raises(ParseError):
            parse_schema("relation P (person primary)")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_schema("   \n  # nothing\n")


class TestParseInstance:
    def test_tuples_and_null(self, cars2):
        instance = parse_instance(
            "P2: (p1, John, j@x)\nC2: (c1, Ford, p1), (c2, Opel, null)", cars2
        )
        assert ("c2", "Opel", NULL) in instance.relation("C2")
        assert instance.total_size() == 3

    def test_unknown_relation(self, cars2):
        with pytest.raises(ParseError):
            parse_instance("Nope: (1, 2)", cars2)

    def test_missing_colon(self, cars2):
        with pytest.raises(ParseError):
            parse_instance("P2 (a, b, c)", cars2)


class TestRenderer:
    def test_render_schema_roundtrips(self, cars2):
        text = render_schema(cars2)
        reparsed = parse_schema(text, name="CARS2")
        assert reparsed.relation("C2").is_nullable("person")
        assert reparsed.foreign_key_from("C2", "person").referenced == "P2"

    def test_render_schema_mapping_aligns_arrows(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        text = render_schema_mapping(system.schema_mapping)
        lines = text.splitlines()
        assert len(lines) == 3
        arrow_columns = {line.index("->") for line in lines}
        assert len(arrow_columns) == 1

    def test_render_program_shortens_functors(self):
        from repro.scenarios.cars import figure10_problem

        system = MappingSystem(figure10_problem())
        text = render_program(system.transformation)
        assert "@" not in text  # abbreviated
        assert "fP(" in text  # f_person@m2 -> fP

    def test_render_program_longform(self):
        from repro.scenarios.cars import figure10_problem

        system = MappingSystem(figure10_problem())
        text = render_program(system.transformation, shorten=False)
        assert "f_person@" in text

    def test_abbreviator_disambiguates(self):
        abbreviator = FunctorAbbreviator()
        first = abbreviator.shorten("f_person@m1(x)")
        second = abbreviator.shorten("f_phone@m2(y)")
        assert first == "fP(x)"
        assert second == "fP2(y)"
        # Stable across calls.
        assert abbreviator.shorten("f_person@m1(z)") == "fP(z)"


class TestStripComment:
    def test_plain_comment(self):
        from repro.dsl.parser import _strip_comment

        assert _strip_comment("relation R (a)  # trailing") == "relation R (a)"
        assert _strip_comment("# whole line") == ""

    def test_hash_inside_quoted_value_is_literal(self):
        from repro.dsl.parser import _strip_comment

        assert _strip_comment("P3: ('#tag', x)") == "P3: ('#tag', x)"
        assert (
            _strip_comment("A.a -> B.b where A.a != '#1'  # note")
            == "A.a -> B.b where A.a != '#1'"
        )

    def test_hash_after_closed_quote_is_a_comment(self):
        from repro.dsl.parser import _strip_comment

        assert _strip_comment("P3: ('v') # gone") == "P3: ('v')"

    def test_quoted_hash_survives_instance_parsing(self, cars3):
        instance = parse_instance("P3: (p1, '#1', e1)  # comment", cars3)
        assert ("p1", "#1", "e1") in instance.relation("P3")

    def test_quoted_hash_survives_filter_parsing(self):
        text = PROBLEM_TEXT.replace(
            "P3.name -> P2.name [p2]",
            "P3.name -> P2.name where P3.name != '#MJ' [p2]",
        )
        problem = parse_problem(text)
        filtered = [c for c in problem.correspondences if c.label == "p2"]
        assert len(filtered) == 1
        assert filtered[0].filters[0].value == "#MJ"


class TestSourceSpans:
    def test_relation_and_attribute_spans(self):
        problem = parse_problem(PROBLEM_TEXT, file="cars.problem.txt")
        relation = problem.source_schema.relation("P3")
        assert relation.span is not None
        assert relation.span.file == "cars.problem.txt"
        assert relation.span.line == 4
        assert relation.attribute("name").span.line == 4

    def test_foreign_key_spans(self):
        problem = parse_problem(PROBLEM_TEXT, file="cars.problem.txt")
        fk = problem.source_schema.foreign_key_from("O3", "car")
        assert fk.span is not None and fk.span.line == 6

    def test_correspondence_spans(self):
        problem = parse_problem(PROBLEM_TEXT, file="cars.problem.txt")
        first = problem.correspondences[0]
        assert first.span is not None
        assert first.span.line == 13
        assert str(first.span) == "cars.problem.txt:13"

    def test_spans_do_not_break_equality(self):
        with_file = parse_problem(PROBLEM_TEXT, file="a.txt")
        without = parse_problem(PROBLEM_TEXT)
        assert (
            with_file.source_schema.relation("P3").attributes
            == without.source_schema.relation("P3").attributes
        )


class TestParseProblemLenient:
    def test_clean_input_has_no_diagnostics(self):
        from repro.dsl.parser import parse_problem_lenient

        problem, found = parse_problem_lenient(PROBLEM_TEXT)
        assert found == []
        assert len(problem.correspondences) == 7

    def test_bad_foreign_key_dropped_and_reported(self):
        from repro.dsl.parser import parse_problem_lenient

        text = PROBLEM_TEXT.replace(
            "relation C3 (car key, model)",
            "relation C3 (car key, model -> Nowhere)",
        )
        problem, found = parse_problem_lenient(text, file="t.txt")
        assert [d.code for d in found] == ["SCH001"]
        assert found[0].span.line == 5
        assert problem.source_schema.foreign_key_from("C3", "model") is None

    def test_bad_correspondence_dropped_and_reported(self):
        from repro.dsl.parser import parse_problem_lenient

        text = PROBLEM_TEXT.replace(
            "C3.model -> C2.model [c2]", "C3.nope -> C2.model [c2]"
        )
        problem, found = parse_problem_lenient(text)
        assert [d.code for d in found] == ["MAP004"]
        assert found[0].span.line == 17
        assert len(problem.correspondences) == 6

    def test_syntax_error_still_raises(self):
        from repro.dsl.parser import parse_problem_lenient

        with pytest.raises(ParseError):
            parse_problem_lenient("source schema S:\n  what is this")


class TestInstanceQuoting:
    def test_quoted_values_are_unquoted(self, cars3):
        instance = parse_instance("C3: ('c1', 'model A')", cars3)
        assert ("c1", "model A") in instance.relation("C3")

    def test_quoted_null_is_the_string_null(self, cars2):
        instance = parse_instance("C2: (c1, m, 'null')", cars2)
        assert ("c1", "m", "null") in instance.relation("C2")
        plain = parse_instance("C2: (c1, m, null)", cars2)
        assert ("c1", "m", NULL) in plain.relation("C2")
