"""Tests for instance homomorphisms, universality and quality metrics."""

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.exchange.instance_chase import canonical_universal_solution
from repro.exchange.metrics import comparison_table, measure_instance
from repro.exchange.solutions import (
    find_instance_homomorphism,
    homomorphically_equivalent,
    is_homomorphic_to,
    is_universal_solution,
)
from repro.model.instance import instance_from_dict
from repro.model.values import NULL, LabeledNull
from repro.scenarios import cars


class TestHomomorphism:
    def test_identity(self, cars3_instance):
        assert is_homomorphic_to(cars3_instance, cars3_instance)

    def test_labeled_null_maps_to_constant(self, cars2):
        invented = LabeledNull("f", ("c1",))
        a = instance_from_dict(cars2, {"C2": [("c1", "Ford", invented)]})
        b = instance_from_dict(cars2, {"C2": [("c1", "Ford", "p7")]})
        assignment = find_instance_homomorphism(a, b)
        assert assignment == {invented: "p7"}
        # but not the other way: constants are rigid.
        assert not is_homomorphic_to(b, a)

    def test_consistent_assignment_required(self, cars2):
        invented = LabeledNull("f", ("c",))
        a = instance_from_dict(
            cars2,
            {"C2": [("c1", "Ford", invented), ("c2", "Opel", invented)]},
        )
        b = instance_from_dict(
            cars2,
            {"C2": [("c1", "Ford", "p1"), ("c2", "Opel", "p2")]},
        )
        assert not is_homomorphic_to(a, b)  # one null cannot be both p1 and p2
        c = instance_from_dict(
            cars2,
            {"C2": [("c1", "Ford", "p1"), ("c2", "Opel", "p1")]},
        )
        assert is_homomorphic_to(a, c)

    def test_null_is_rigid(self, cars2):
        a = instance_from_dict(cars2, {"C2": [("c1", "Ford", NULL)]})
        b = instance_from_dict(cars2, {"C2": [("c1", "Ford", "p1")]})
        assert not is_homomorphic_to(a, b)
        assert is_homomorphic_to(a, a)

    def test_missing_tuple_blocks(self, cars3_instance):
        smaller = cars3_instance.copy()
        smaller.relation("O3").discard(("c85", "p22"))
        assert is_homomorphic_to(smaller, cars3_instance)
        assert not is_homomorphic_to(cars3_instance, smaller)

    def test_equivalence(self, cars3_instance):
        assert homomorphically_equivalent(cars3_instance, cars3_instance.copy())


class TestUniversality:
    def test_novel_output_universal_under_null_policy(
        self, figure1_problem, cars3_instance
    ):
        system = MappingSystem(figure1_problem)
        produced = system.transform(cars3_instance)
        canonical = canonical_universal_solution(
            system.schema_mapping, cars3_instance, null_for_nullable_existentials=True
        )
        assert is_universal_solution(produced, canonical)


class TestMetrics:
    def test_figure2_vs_figure3(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        novel = MappingSystem(figure1_problem).transform(cars3_instance)

        basic_metrics = measure_instance(basic)
        novel_metrics = measure_instance(novel)

        # Figure 2: 7 tuples, 6 distinct invented values, a key violation on
        # C2 and two useless P2 tuples.
        assert basic_metrics.total_tuples == 7
        assert basic_metrics.distinct_invented == 6
        assert basic_metrics.key_violations == 1
        assert basic_metrics.useless_tuples == 2
        assert not basic_metrics.ok

        # Figure 3: 4 tuples, no invented values, one null, no violations.
        assert novel_metrics.total_tuples == 4
        assert novel_metrics.distinct_invented == 0
        assert novel_metrics.null_values == 1
        assert novel_metrics.useless_tuples == 0
        assert novel_metrics.ok

    def test_partially_invented(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        metrics = measure_instance(basic)
        # C2 tuples mixing a real car with an invented owner.
        assert metrics.partially_invented_tuples == 2

    def test_comparison_table(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        table = comparison_table({"basic": basic, "novel": novel})
        assert "basic" in table and "novel" in table
        assert "key-violations" in table

    def test_empty_table(self):
        assert comparison_table({}) == "(no results)"
