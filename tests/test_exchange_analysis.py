"""Tests for the semantic transformation analysis."""

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.exchange.analysis import analyze_transformation
from repro.scenarios import cars


class TestNovelAnalysis:
    def test_figure1_analysis(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        analysis = analyze_transformation(system, cars3_instance)
        assert analysis.validation.ok
        assert analysis.is_canonical_null_policy
        assert analysis.metrics.distinct_invented == 0
        assert "canonical (null pol): True" in analysis.summary()

    def test_figure10_sound_but_not_null_canonical(self, cars3_instance):
        # Mandatory owners force invented values; the output is homomorphic
        # to the canonical solution but keeps its Skolem structure.
        system = MappingSystem(cars.figure10_problem())
        analysis = analyze_transformation(system, cars3_instance)
        assert analysis.validation.ok
        assert analysis.is_sound_wrt_canonical
        assert analysis.metrics.distinct_invented > 0


class TestBasicAnalysis:
    def test_figure1_basic_analysis(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem, algorithm=BASIC)
        analysis = analyze_transformation(system, cars3_instance)
        assert not analysis.validation.ok  # Figure 2's key violation
        assert not analysis.is_canonical_null_policy
        assert analysis.metrics.useless_tuples == 2

    def test_summary_is_printable(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem, algorithm=BASIC)
        analysis = analyze_transformation(system, cars3_instance)
        text = analysis.summary()
        assert "key violation" in text
        assert "useless tuples:       2" in text
