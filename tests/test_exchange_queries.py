"""Tests for conjunctive queries and certain answers over target instances."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.exchange.queries import ConjunctiveQuery, certain_answers, evaluate_query, query
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.model.values import NULL
from repro.scenarios import cars


def V(name):
    return Variable(name)


class TestEvaluation:
    def test_projection(self, cars3_instance):
        p, n, e = V("p"), V("n"), V("e")
        q = query([n], RelationalAtom("P3", (p, n, e)))
        assert evaluate_query(q, cars3_instance) == {("John",), ("MJ",)}

    def test_join(self, cars3_instance):
        c, p, m = V("c"), V("p"), V("m")
        q = query(
            [m, p],
            RelationalAtom("O3", (c, p)),
            RelationalAtom("C3", (c, m)),
        )
        assert evaluate_query(q, cars3_instance) == {("Ferrari", "p22")}

    def test_null_conditions(self):
        source = cars.figure15_source_instance()
        c, m, p = V("c"), V("m"), V("p")
        ownerless = query([c], RelationalAtom("C2", (c, m, p)), null_vars=[p])
        owned = query([c], RelationalAtom("C2", (c, m, p)), nonnull_vars=[p])
        assert evaluate_query(ownerless, source) == {("c86",)}
        assert evaluate_query(owned, source) == {("c85",)}

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(head=(V("x"),), body=(RelationalAtom("R", (V("y"),)),))


class TestCertainAnswers:
    def test_invented_values_are_not_certain(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        p, n, e = V("p"), V("n"), V("e")
        names = query([n], RelationalAtom("P2", (p, n, e)))
        # Naive answers include the invented persons' invented names...
        assert len(evaluate_query(names, basic)) == 4
        # ...but the certain answers are only the real ones.
        assert certain_answers(names, basic) == {("John",), ("MJ",)}

    def test_basic_and_novel_agree_on_certain_answers(
        self, figure1_problem, cars3_instance
    ):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        c, m, p = V("c"), V("m"), V("p")
        n, e = V("n"), V("e")
        owners = query(
            [c, n],
            RelationalAtom("C2", (c, m, p)),
            RelationalAtom("P2", (p, n, e)),
        )
        assert certain_answers(owners, basic) == certain_answers(owners, novel)
        assert certain_answers(owners, novel) == {("c85", "MJ")}

    def test_null_counts_as_certain(self, figure1_problem, cars3_instance):
        # The unlabeled null is a value in the paper's semantics: the fact
        # "c86 has no known owner" is certain.
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        c, m, p = V("c"), V("m"), V("p")
        all_cars = query([c, p], RelationalAtom("C2", (c, m, p)))
        answers = certain_answers(all_cars, novel)
        assert ("c86", NULL) in answers
        assert ("c85", "p22") in answers

    def test_novel_certain_answers_match_source(self, figure1_problem, cars3_instance):
        # Round-trip sanity: certain owner pairs equal the source ownerships.
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        c, m, p = V("c"), V("m"), V("p")
        owned = query(
            [c, p], RelationalAtom("C2", (c, m, p)), nonnull_vars=[p]
        )
        assert certain_answers(owned, novel) == set(
            cars3_instance.relation("O3").rows
        )


class TestParseQuery:
    def test_simple_parse_and_eval(self, cars3_instance):
        from repro.exchange.queries import parse_query

        q = parse_query("(n) <- O3(c, p), P3(p, n, e)")
        assert evaluate_query(q, cars3_instance) == {("MJ",)}

    def test_conditions(self):
        from repro.exchange.queries import parse_query

        source = cars.figure15_source_instance()
        ownerless = parse_query("(c) <- C2(c, m, p), p = null")
        owned = parse_query("(c, p) <- C2(c, m, p), p != null")
        assert evaluate_query(ownerless, source) == {("c86",)}
        assert evaluate_query(owned, source) == {("c85", "p22")}

    def test_joins_by_shared_names(self, cars3_instance):
        from repro.exchange.queries import parse_query

        q = parse_query("(m) <- O3(c, p), C3(c, m)")
        assert evaluate_query(q, cars3_instance) == {("Ferrari",)}

    def test_errors(self):
        from repro.errors import ParseError
        from repro.exchange.queries import parse_query

        with pytest.raises(ParseError):
            parse_query("no arrow here")
        with pytest.raises(ParseError):
            parse_query("x <- R(x)")  # head not parenthesized
        with pytest.raises(ParseError):
            parse_query("(y) <- R(x)")  # unsafe head
        with pytest.raises(ParseError):
            parse_query("(x) <- R(x), x > 3")  # unsupported condition
        with pytest.raises(ParseError):
            parse_query("(x) <- ")  # no atoms

    def test_certain_answers_from_text(self, figure1_problem, cars3_instance):
        from repro.exchange.queries import parse_query

        output = MappingSystem(figure1_problem).transform(cars3_instance)
        q = parse_query("(c, n) <- C2(c, m, p), P2(p, n, e)")
        assert certain_answers(q, output) == {("c85", "MJ")}
