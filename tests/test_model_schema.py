"""Tests for relation schemas, schemas, keys, foreign keys."""

import pytest

from repro.errors import SchemaError
from repro.model.schema import Attribute, ForeignKey, RelationSchema, Schema


class TestAttribute:
    def test_defaults_mandatory(self):
        assert not Attribute("name").nullable

    def test_nullable_repr(self):
        assert repr(Attribute("email", nullable=True)) == "email^null"

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")


class TestRelationSchema:
    def test_first_attribute_is_default_key(self):
        relation = RelationSchema("P", ["person", "name"])
        assert relation.key == ("person",)

    def test_explicit_key(self):
        relation = RelationSchema("P", ["a", "b"], key="b")
        assert relation.key == ("b",)

    def test_composite_key(self):
        relation = RelationSchema("E", ["course", "student", "grade"], key=["course", "student"])
        assert relation.key == ("course", "student")
        assert not relation.has_simple_key
        assert relation.key_positions() == (0, 1)

    def test_key_attribute_must_exist(self):
        with pytest.raises(SchemaError):
            RelationSchema("P", ["a"], key="missing")

    def test_key_attribute_cannot_be_nullable(self):
        with pytest.raises(SchemaError):
            RelationSchema("P", [Attribute("a", nullable=True)], key="a")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("P", ["a", "a"])

    def test_empty_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("P", [])

    def test_positions_and_lookup(self):
        relation = RelationSchema("P", ["a", "b", "c"])
        assert relation.position("b") == 1
        assert relation.attribute("c").name == "c"
        assert relation.has_attribute("a")
        assert not relation.has_attribute("z")
        with pytest.raises(SchemaError):
            relation.position("z")

    def test_key_and_nonkey_classification(self):
        relation = RelationSchema("P", ["k", "v"])
        assert relation.is_key_attribute("k")
        assert not relation.is_key_attribute("v")
        assert relation.nonkey_attribute_names() == ("v",)

    def test_equality_and_hash(self):
        a = RelationSchema("P", ["x", "y"], key="x")
        b = RelationSchema("P", ["x", "y"], key="x")
        assert a == b
        assert hash(a) == hash(b)
        assert a != RelationSchema("P", ["x", "y"], key="y")


class TestSchema:
    def _simple(self) -> Schema:
        return Schema(
            [
                RelationSchema("P", ["person", "name"]),
                RelationSchema("C", ["car", Attribute("person", nullable=True)]),
            ],
            [ForeignKey("C", "person", "P")],
        )

    def test_relation_lookup(self):
        schema = self._simple()
        assert schema.relation("P").name == "P"
        assert "C" in schema
        assert len(schema) == 2
        with pytest.raises(SchemaError):
            schema.relation("missing")

    def test_foreign_key_queries(self):
        schema = self._simple()
        fk = schema.foreign_key_from("C", "person")
        assert fk is not None and fk.referenced == "P"
        assert schema.foreign_key_from("C", "car") is None
        assert schema.has_foreign_key_from("C", "person")
        assert [f.attribute for f in schema.foreign_keys_of("C")] == ["person"]
        assert [f.relation for f in schema.foreign_keys_into("P")] == ["C"]

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("P", ["a"]), RelationSchema("P", ["b"])])

    def test_fk_from_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("P", ["a"])], [ForeignKey("X", "a", "P")])

    def test_fk_to_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema([RelationSchema("P", ["a"])], [ForeignKey("P", "a", "X")])

    def test_fk_on_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema(
                [RelationSchema("P", ["a"]), RelationSchema("Q", ["b"])],
                [ForeignKey("P", "zzz", "Q")],
            )

    def test_fk_must_reference_simple_key(self):
        composite = RelationSchema("E", ["c", "s", "g"], key=["c", "s"])
        with pytest.raises(SchemaError):
            Schema(
                [composite, RelationSchema("R", ["e"])],
                [ForeignKey("R", "e", "E")],
            )

    def test_duplicate_fk_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [RelationSchema("P", ["a"]), RelationSchema("Q", ["b"])],
                [ForeignKey("P", "a", "Q"), ForeignKey("P", "a", "Q")],
            )

    def test_paper_schemas_validate(self, cars3, cars2, cars2a):
        for schema in (cars3, cars2, cars2a):
            schema.validate()
