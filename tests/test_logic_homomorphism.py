"""Tests for homomorphisms between atom sets."""

import itertools

from repro.logic.atoms import RelationalAtom
from repro.logic.homomorphism import embeds, find_homomorphism, iter_homomorphisms
from repro.logic.terms import Constant, Variable


def V(name):
    return Variable(name)


def test_identity_embedding():
    x = V("x")
    atoms = [RelationalAtom("R", (x,))]
    assignment = find_homomorphism(atoms, atoms)
    assert assignment == {x: x}


def test_embedding_into_superset():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("P", (x,))]
    target = [RelationalAtom("Q", (a,)), RelationalAtom("P", (b,))]
    assignment = find_homomorphism(pattern, target)
    assert assignment == {x: b}


def test_no_embedding_when_relation_missing():
    assert not embeds(
        [RelationalAtom("P", (V("x"),))],
        [RelationalAtom("Q", (V("a"),))],
    )


def test_join_variable_consistency():
    x, y = V("x"), V("y")
    a, b, c = V("a"), V("b"), V("c")
    # Pattern shares x between both atoms; target does not share.
    pattern = [RelationalAtom("R", (x, y)), RelationalAtom("S", (x,))]
    disconnected = [RelationalAtom("R", (a, b)), RelationalAtom("S", (c,))]
    assert not embeds(pattern, disconnected)
    connected = [RelationalAtom("R", (a, b)), RelationalAtom("S", (a,))]
    assignment = find_homomorphism(pattern, connected)
    assert assignment == {x: a, y: b}


def test_constants_must_match():
    pattern = [RelationalAtom("R", (Constant("c"),))]
    assert embeds(pattern, [RelationalAtom("R", (Constant("c"),))])
    assert not embeds(pattern, [RelationalAtom("R", (Constant("d"),))])


def test_fixed_bindings_respected():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x,))]
    target = [RelationalAtom("R", (a,)), RelationalAtom("R", (b,))]
    assignment = find_homomorphism(pattern, target, fixed={x: b})
    assert assignment == {x: b}
    # An impossible fixed binding blocks the embedding.
    z = V("z")
    assert find_homomorphism(pattern, target, fixed={x: z}) is None


def test_var_check_vetoes_bindings():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x,))]
    target = [RelationalAtom("R", (a,)), RelationalAtom("R", (b,))]
    assignment = find_homomorphism(
        pattern, target, var_check=lambda v, t: t is b
    )
    assert assignment == {x: b}
    assert find_homomorphism(pattern, target, var_check=lambda v, t: False) is None


def test_backtracking_over_choices():
    x, y = V("x"), V("y")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x, y)), RelationalAtom("S", (y,))]
    target = [
        RelationalAtom("R", (a, a)),
        RelationalAtom("R", (a, b)),
        RelationalAtom("S", (b,)),
    ]
    assignment = find_homomorphism(pattern, target)
    assert assignment == {x: a, y: b}


def test_duplicate_variable_in_pattern_atom():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x, x))]
    assert not embeds(pattern, [RelationalAtom("R", (a, b))])
    assert embeds(pattern, [RelationalAtom("R", (a, a))])


def test_arity_mismatch():
    assert not embeds(
        [RelationalAtom("R", (V("x"),))],
        [RelationalAtom("R", (V("a"), V("b")))],
    )


def test_iter_homomorphisms_enumerates_all():
    x = V("x")
    a, b, c = Constant("a"), Constant("b"), Constant("c")
    pattern = [RelationalAtom("R", (x,))]
    target = [RelationalAtom("R", (t,)) for t in (a, b, c)]
    images = [assignment[x] for assignment in iter_homomorphisms(pattern, target)]
    assert sorted(images, key=repr) == [a, b, c]


def test_witness_is_independent_of_target_order():
    """The canonical candidate ordering makes the first witness stable."""
    x, y = V("x"), V("y")
    pattern = [RelationalAtom("R", (x, y)), RelationalAtom("S", (y,))]
    atoms = [
        RelationalAtom("R", (Constant("a"), Constant("b"))),
        RelationalAtom("R", (Constant("c"), Constant("d"))),
        RelationalAtom("S", (Constant("b"),)),
        RelationalAtom("S", (Constant("d"),)),
    ]
    witnesses = {
        tuple(sorted(find_homomorphism(pattern, list(perm)).items(),
                     key=lambda item: item[0].name))
        for perm in itertools.permutations(atoms)
    }
    assert len(witnesses) == 1


def test_enumeration_order_is_deterministic():
    x = V("x")
    pattern = [RelationalAtom("R", (x,))]
    atoms = [RelationalAtom("R", (Constant(f"c{i}"),)) for i in range(4)]
    expected = [a[x] for a in iter_homomorphisms(pattern, atoms)]
    for perm in itertools.permutations(atoms):
        got = [a[x] for a in iter_homomorphisms(pattern, list(perm))]
        assert got == expected


def test_constant_prefilter_prunes_candidates():
    """Targets that clash on constants never enter the backtracking search."""
    x = V("x")
    pattern = [RelationalAtom("R", (Constant("k"), x))]
    target = [RelationalAtom("R", (Constant(f"n{i}"), Constant("v"))) for i in range(50)]
    target.append(RelationalAtom("R", (Constant("k"), Constant("hit"))))
    vetoed: list = []

    def check(var, term):
        vetoed.append(term)
        return True

    assignment = find_homomorphism(pattern, target, var_check=check)
    assert assignment == {x: Constant("hit")}
    # Only the single compatible atom was ever offered to var_check.
    assert vetoed == [Constant("hit")]


def test_repeated_variable_prefilter():
    x = V("x")
    pattern = [RelationalAtom("R", (x, x))]
    target = [
        RelationalAtom("R", (Constant("a"), Constant("b"))),
        RelationalAtom("R", (Constant("c"), Constant("c"))),
    ]
    assert find_homomorphism(pattern, target) == {x: Constant("c")}


def test_fixed_bindings_feed_the_prefilter():
    x, y = V("x"), V("y")
    pattern = [RelationalAtom("R", (x, y))]
    target = [
        RelationalAtom("R", (Constant("a"), Constant("b"))),
        RelationalAtom("R", (Constant("c"), Constant("d"))),
    ]
    assignment = find_homomorphism(pattern, target, fixed={x: Constant("c")})
    assert assignment == {x: Constant("c"), y: Constant("d")}
