"""Tests for homomorphisms between atom sets."""

from repro.logic.atoms import RelationalAtom
from repro.logic.homomorphism import embeds, find_homomorphism
from repro.logic.terms import Constant, Variable


def V(name):
    return Variable(name)


def test_identity_embedding():
    x = V("x")
    atoms = [RelationalAtom("R", (x,))]
    assignment = find_homomorphism(atoms, atoms)
    assert assignment == {x: x}


def test_embedding_into_superset():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("P", (x,))]
    target = [RelationalAtom("Q", (a,)), RelationalAtom("P", (b,))]
    assignment = find_homomorphism(pattern, target)
    assert assignment == {x: b}


def test_no_embedding_when_relation_missing():
    assert not embeds(
        [RelationalAtom("P", (V("x"),))],
        [RelationalAtom("Q", (V("a"),))],
    )


def test_join_variable_consistency():
    x, y = V("x"), V("y")
    a, b, c = V("a"), V("b"), V("c")
    # Pattern shares x between both atoms; target does not share.
    pattern = [RelationalAtom("R", (x, y)), RelationalAtom("S", (x,))]
    disconnected = [RelationalAtom("R", (a, b)), RelationalAtom("S", (c,))]
    assert not embeds(pattern, disconnected)
    connected = [RelationalAtom("R", (a, b)), RelationalAtom("S", (a,))]
    assignment = find_homomorphism(pattern, connected)
    assert assignment == {x: a, y: b}


def test_constants_must_match():
    pattern = [RelationalAtom("R", (Constant("c"),))]
    assert embeds(pattern, [RelationalAtom("R", (Constant("c"),))])
    assert not embeds(pattern, [RelationalAtom("R", (Constant("d"),))])


def test_fixed_bindings_respected():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x,))]
    target = [RelationalAtom("R", (a,)), RelationalAtom("R", (b,))]
    assignment = find_homomorphism(pattern, target, fixed={x: b})
    assert assignment == {x: b}
    # An impossible fixed binding blocks the embedding.
    z = V("z")
    assert find_homomorphism(pattern, target, fixed={x: z}) is None


def test_var_check_vetoes_bindings():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x,))]
    target = [RelationalAtom("R", (a,)), RelationalAtom("R", (b,))]
    assignment = find_homomorphism(
        pattern, target, var_check=lambda v, t: t is b
    )
    assert assignment == {x: b}
    assert find_homomorphism(pattern, target, var_check=lambda v, t: False) is None


def test_backtracking_over_choices():
    x, y = V("x"), V("y")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x, y)), RelationalAtom("S", (y,))]
    target = [
        RelationalAtom("R", (a, a)),
        RelationalAtom("R", (a, b)),
        RelationalAtom("S", (b,)),
    ]
    assignment = find_homomorphism(pattern, target)
    assert assignment == {x: a, y: b}


def test_duplicate_variable_in_pattern_atom():
    x = V("x")
    a, b = V("a"), V("b")
    pattern = [RelationalAtom("R", (x, x))]
    assert not embeds(pattern, [RelationalAtom("R", (a, b))])
    assert embeds(pattern, [RelationalAtom("R", (a, a))])


def test_arity_mismatch():
    assert not embeds(
        [RelationalAtom("R", (V("x"),))],
        [RelationalAtom("R", (V("a"), V("b")))],
    )
