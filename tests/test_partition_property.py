"""The paper's partition property of partial tableaux (section 5.1).

"These partial tableaux, seen as queries, form a 'partition' of relation R:
(i) partial tableaux in T_R are pairwise disjoint, and (ii) R = T1 ∪ … ∪ Tn"
— over instances satisfying the schema constraints.  We verify it directly:
for every tuple of the base relation, *exactly one* partial tableau's
null/non-null pattern matches it.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.chase import MODIFIED, chase_relation
from repro.model.instance import Instance
from repro.model.values import NULL, is_null
from repro.scenarios.cars import cars2_schema, carsod_schema
from repro.scenarios.synthetic import cars2_instance


def _matches_root_pattern(tableau, schema, relation_name, row):
    """Does the row satisfy the tableau's conditions on the root atom?"""
    relation = schema.relation(relation_name)
    for position, attribute in enumerate(relation.attribute_names):
        term = tableau.term_at(0, attribute)
        value = row[position]
        if term in tableau.null_vars and not is_null(value):
            return False
        if term in tableau.nonnull_vars and is_null(value):
            return False
    return True


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=30))
def test_cars2_tableaux_partition_c2(n_persons, n_cars):
    schema = cars2_schema()
    tableaux = chase_relation(schema, "C2", MODIFIED)
    instance = cars2_instance(n_persons, n_cars, seed=n_persons + 31 * n_cars)
    for row in instance.relation("C2"):
        matching = [
            t for t in tableaux if _matches_root_pattern(t, schema, "C2", row)
        ]
        assert len(matching) == 1, row


def test_carsod_four_way_partition():
    schema = carsod_schema()
    tableaux = chase_relation(schema, "Cod", MODIFIED)
    assert len(tableaux) == 4
    instance = Instance(schema)
    rows = [
        ("c1", "m", "o", "d"),
        ("c2", "m", "o", NULL),
        ("c3", "m", NULL, "d"),
        ("c4", "m", NULL, NULL),
    ]
    for row in rows:
        instance.add("Cod", row)
    for row in rows:
        matching = [
            t for t in tableaux if _matches_root_pattern(t, schema, "Cod", row)
        ]
        assert len(matching) == 1


def test_mandatory_relation_single_class():
    schema = cars2_schema()
    tableaux = chase_relation(schema, "P2", MODIFIED)
    assert len(tableaux) == 1
    assert _matches_root_pattern(tableaux[0], schema, "P2", ("p1", "n", "e"))
