"""More property-based tests: C.2 at random, parser robustness, metrics."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import MappingSystem
from repro.dsl.parser import parse_instance, parse_problem, parse_schema
from repro.errors import ParseError, ReproError
from repro.exchange.metrics import measure_instance
from repro.model.instance import Instance
from repro.model.validation import validate_instance
from repro.model.values import NULL
from repro.scenarios import cars
from repro.scenarios.composite import enrollment_problem


# ---------------------------------------------------------------------------
# Example C.2 (owners and drivers) on arbitrary instances
# ---------------------------------------------------------------------------

@st.composite
def cars4_instances(draw):
    n_persons = draw(st.integers(min_value=1, max_value=5))
    n_cars = draw(st.integers(min_value=0, max_value=6))
    instance = Instance(cars.cars4_schema())
    for i in range(n_persons):
        instance.add("P4", (f"p{i}", f"name{i}", f"mail{i}"))
    for i in range(n_cars):
        instance.add("C4", (f"c{i}", f"model{i % 2}"))
        if draw(st.booleans()):
            instance.add("O4", (f"c{i}", f"p{draw(st.integers(0, n_persons - 1))}"))
        if draw(st.booleans()):
            instance.add("D4", (f"c{i}", f"p{draw(st.integers(0, n_persons - 1))}"))
    return instance


@settings(max_examples=30, deadline=None)
@given(cars4_instances())
def test_c2_one_tuple_per_car_with_correct_names(source):
    system = MappingSystem(cars.figure12_problem())
    output = system.transform(source)
    assert validate_instance(output).ok
    rows = {row[0]: row for row in output.relation("Cod")}
    assert len(rows) == len(source.relation("C4"))
    person_names = {row[0]: row[1] for row in source.relation("P4")}
    owners = {row[0]: person_names[row[1]] for row in source.relation("O4")}
    drivers = {row[0]: person_names[row[1]] for row in source.relation("D4")}
    for car, row in rows.items():
        assert row[2] == owners.get(car, NULL)
        assert row[3] == drivers.get(car, NULL)


# ---------------------------------------------------------------------------
# Composite-key consolidation at random
# ---------------------------------------------------------------------------

@st.composite
def enrollment_instances(draw):
    problem = enrollment_problem()
    instance = Instance(problem.source_schema)
    keys = [("c%d" % c, "s%d" % s) for c in range(3) for s in range(3)]
    graded = draw(st.lists(st.sampled_from(keys), max_size=6, unique=True))
    mentored = draw(st.lists(st.sampled_from(keys), max_size=6, unique=True))
    for course, student in graded:
        instance.add("Grade", (course, student, "A"))
    for course, student in mentored:
        instance.add("Mentor", (course, student, "m"))
    return instance, set(graded), set(mentored)


@settings(max_examples=30, deadline=None)
@given(enrollment_instances())
def test_enrollment_fusion_covers_exactly_the_union(data):
    source, graded, mentored = data
    system = MappingSystem(enrollment_problem())
    output = system.transform(source)
    assert validate_instance(output).ok
    rows = {(row[0], row[1]): row for row in output.relation("Enrollment")}
    assert set(rows) == graded | mentored
    for key, row in rows.items():
        assert (row[2] == "A") == (key in graded)
        assert (row[3] == "m") == (key in mentored)


# ---------------------------------------------------------------------------
# Parser robustness: random text never crashes with a non-library error
# ---------------------------------------------------------------------------

_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FF),
    max_size=200,
)


@settings(max_examples=80, deadline=None)
@given(_text)
def test_parse_problem_raises_only_library_errors(text):
    try:
        parse_problem(text)
    except ReproError:
        pass  # ParseError and friends are the contract


@settings(max_examples=80, deadline=None)
@given(_text)
def test_parse_schema_raises_only_library_errors(text):
    try:
        parse_schema(text)
    except ReproError:
        pass


@settings(max_examples=50, deadline=None)
@given(_text)
def test_parse_instance_raises_only_library_errors(text):
    schema = cars.cars2_schema()
    try:
        parse_instance(text, schema)
    except ReproError:
        pass


# ---------------------------------------------------------------------------
# Metrics invariants
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
def test_metrics_are_consistent(n_persons, n_cars):
    from repro.scenarios.synthetic import cars3_instance

    instance = cars3_instance(n_persons, n_cars, seed=n_persons * 31 + n_cars)
    metrics = measure_instance(instance)
    assert metrics.total_tuples == instance.total_size()
    assert metrics.invented_values >= metrics.distinct_invented >= 0
    assert metrics.useless_tuples + metrics.partially_invented_tuples <= metrics.total_tuples
    assert metrics.ok  # generator produces valid instances
