"""Tests for the SQL backend: value encoding, DDL, translation, execution."""

import pytest
import sqlite3

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.errors import EvaluationError
from repro.model.values import NULL, LabeledNull
from repro.scenarios import cars
from repro.sqlgen.ddl import create_table_sql, quote_identifier, schema_ddl
from repro.sqlgen.executor import SqliteExecutor, run_on_sqlite
from repro.sqlgen.queries import program_to_sql, rule_to_sql, sql_literal
from repro.sqlgen.values import INVENTED_PREFIX, decode_value, encode_value


class TestValueEncoding:
    def test_null_roundtrip(self):
        assert encode_value(NULL) is None
        assert decode_value(None) is NULL

    def test_constant_passthrough(self):
        assert encode_value("abc") == "abc"
        assert decode_value("abc") == "abc"
        assert decode_value(42) == 42

    def test_labeled_null_roundtrip(self):
        value = LabeledNull("f_person@m2", ("c86",))
        assert decode_value(encode_value(value)) == value

    def test_multi_arg_roundtrip(self):
        value = LabeledNull("f", ("a", "b", "c"))
        assert decode_value(encode_value(value)) == value

    def test_nested_roundtrip(self):
        value = LabeledNull("g", (LabeledNull("f", ("x",)), "y"))
        assert decode_value(encode_value(value)) == value

    def test_null_argument_roundtrip(self):
        value = LabeledNull("f", (NULL,))
        assert decode_value(encode_value(value)) == value

    def test_zero_arity_roundtrip(self):
        value = LabeledNull("f", ())
        assert decode_value(encode_value(value)) == value

    def test_trailing_garbage_rejected(self):
        encoded = encode_value(LabeledNull("f", ("a",))) + "junk"
        with pytest.raises(EvaluationError):
            decode_value(encoded)

    def test_prefix_is_control_character(self):
        assert INVENTED_PREFIX == "\x02"


class TestDdl:
    def test_quote_identifier(self):
        assert quote_identifier("person") == '"person"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_create_table_with_constraints(self, cars2):
        sql = create_table_sql(cars2.relation("C2"), cars2, enforce=True)
        assert "PRIMARY KEY" in sql
        assert "FOREIGN KEY" in sql
        assert '"model" TEXT NOT NULL' in sql
        assert '"person" TEXT,' in sql or '"person" TEXT\n' in sql  # nullable

    def test_create_table_bare(self, cars2):
        sql = create_table_sql(cars2.relation("C2"), cars2, enforce=False)
        assert "PRIMARY KEY" not in sql and "NOT NULL" not in sql

    def test_schema_ddl_order(self, cars2):
        statements = schema_ddl(cars2)
        assert statements[0].startswith('CREATE TABLE "P2"')  # FK target first

    def test_ddl_executes_on_sqlite(self, cars3):
        connection = sqlite3.connect(":memory:")
        for statement in schema_ddl(cars3):
            connection.execute(statement)
        connection.close()

    def test_literal_quoting(self):
        assert sql_literal("a'b") == "'a''b'"
        assert sql_literal(5) == "5"


class TestTranslation:
    def test_program_to_sql_statement_count(self, figure1_problem):
        program = MappingSystem(figure1_problem).transformation
        statements = program_to_sql(program)
        # 1 CREATE tmp + 4 inserts.
        assert len(statements) == 5
        assert statements[0].startswith("CREATE TABLE")

    def test_negation_becomes_not_exists(self, figure1_problem):
        program = MappingSystem(figure1_problem).transformation
        negated = next(r for r in program.rules if r.negated)
        sql = rule_to_sql(negated, program)
        assert "NOT EXISTS" in sql

    def test_null_condition_translation(self):
        problem = cars.figure14_problem()
        program = MappingSystem(problem).transformation
        statements = program_to_sql(program)
        assert any("IS NULL" in s for s in statements)
        assert any("IS NOT NULL" in s for s in statements)

    def test_skolem_expression(self):
        problem = cars.figure10_problem()
        program = MappingSystem(problem).transformation
        statements = "\n".join(program_to_sql(program))
        # Length-prefixed functor argument expression (see ast.skolem_argument).
        assert "CASE WHEN" in statements
        assert "LENGTH(CAST(" in statements


class TestExecutorParity:
    """The SQLite backend must agree with the Datalog engine everywhere."""

    SCENARIOS = [
        (cars.figure1_problem, cars.cars3_source_instance, "novel"),
        (cars.figure1_problem, cars.cars3_source_instance, "basic"),
        (cars.figure4_problem, cars.cars3_source_instance, "novel"),
        (cars.figure4_ra_problem, cars.cars3_source_instance, "novel"),
        (cars.figure7_problem, cars.figure8_source_instance, "basic"),
        (cars.figure9_problem, cars.cars3_source_instance, "novel"),
        (cars.figure10_problem, cars.cars3_source_instance, "novel"),
        (cars.figure12_problem, cars.figure13_source_instance, "novel"),
        (cars.figure14_problem, cars.figure15_source_instance, "novel"),
    ]

    @pytest.mark.parametrize("make_problem,make_instance,algorithm", SCENARIOS)
    def test_parity(self, make_problem, make_instance, algorithm):
        problem = make_problem()
        system = MappingSystem(problem, algorithm=algorithm)
        source = make_instance()
        engine_output = system.transform(source)
        sql_output = run_on_sqlite(system.transformation, source)
        assert sql_output == engine_output, problem.name


class TestConstraintEnforcement:
    def test_novel_output_loads_with_constraints(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        result = run_on_sqlite(
            system.transformation, cars3_instance, enforce_constraints=True
        )
        assert result == system.transform(cars3_instance)

    def test_basic_output_violates_constraints(self, figure1_problem, cars3_instance):
        # Figure 2's duplicate key on C2: the paper's motivating defect,
        # caught by the real database.
        system = MappingSystem(figure1_problem, algorithm=BASIC)
        with pytest.raises(sqlite3.IntegrityError):
            run_on_sqlite(
                system.transformation, cars3_instance, enforce_constraints=True
            )

    def test_trace_records_statements(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        executor = SqliteExecutor()
        executor.run(system.transformation, cars3_instance)
        assert any("INSERT INTO" in s for s in executor.trace.statements)
        assert any(s.startswith("CREATE TABLE") for s in executor.trace.statements)
