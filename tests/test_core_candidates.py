"""Tests for skeleton/candidate generation and nullable-related pruning."""

from repro.core.candidates import generate_candidates
from repro.core.chase import MODIFIED, STANDARD, logical_relations
from repro.scenarios import cars


def _figure1_generation(algorithm_mode=MODIFIED, nullable_pruning=True):
    problem = cars.figure1_problem()
    source = logical_relations(problem.source_schema, mode=algorithm_mode)
    target = logical_relations(problem.target_schema, mode=algorithm_mode)
    return generate_candidates(
        source, target, problem.correspondences, apply_nullable_pruning=nullable_pruning
    )


class TestFigure1Candidates:
    """Example 5.2: nine skeletons, seven candidates, two nullable-pruned."""

    def test_skeleton_count(self):
        generation = _figure1_generation()
        assert generation.skeleton_count == 9

    def test_candidate_shapes(self):
        generation = _figure1_generation()
        shapes = {
            (
                tuple(a.relation for a in c.source_tableau.atoms),
                tuple(a.relation for a in c.target_tableau.atoms),
                tuple(sorted(x.correspondence.label for x in c.selection)),
            )
            for c in generation.candidates
        }
        # The five candidates surviving nullable-related pruning (S1, S2, S3,
        # S6, S7 of Example 5.2; S4 and S5-sibling pruning happens later or
        # here depending on the rule).
        assert (("P3",), ("P2",), ("p1", "p2", "p3")) in shapes
        assert (("O3", "C3", "P3"), ("P2",), ("p1", "p2", "p3")) in shapes
        assert (("C3",), ("C2",), ("c1", "c2")) in shapes
        assert (
            ("O3", "C3", "P3"),
            ("C2", "P2"),
            ("c1", "c2", "o1", "o2", "p1", "p2", "p3"),
        ) in shapes

    def test_s4_pruned_as_poison(self):
        # S4 = O3,C3,P3 / C2 with p=null covers o2 at degree (mand, null).
        generation = _figure1_generation()
        poisons = [p for p in generation.pruned if p.rule == "poison"]
        assert any("o2" in p.reason or "O3.person" in p.reason for p in poisons)

    def test_s5_pruned_or_kept_for_later_rules(self):
        # S5 = C3 / C2-nonnull-P2 survives candidate generation (it is pruned
        # later by non-null extension, Example 5.2).
        generation = _figure1_generation()
        s5 = [
            c
            for c in generation.candidates
            if tuple(a.relation for a in c.source_tableau.atoms) == ("C3",)
            and tuple(a.relation for a in c.target_tableau.atoms) == ("C2", "P2")
        ]
        assert len(s5) == 1

    def test_basic_mode_generates_unpruned_candidates(self):
        generation = _figure1_generation(STANDARD, nullable_pruning=False)
        # 3 x 2 = 6 skeletons; (P3 / C2P2) covers p-correspondences via P2,
        # (C3 / P2) covers nothing.
        assert generation.skeleton_count == 6
        assert not generation.pruned


class TestUnboundNonNullRule:
    def test_figure4_prunes_unbound_nonnull(self):
        # (C3 / C1 with name != null): name is nullable, non-null, has no FK
        # and is not bound -> pruned (Example 2.2 / A.4 reasoning).
        problem = cars.figure4_problem()
        source = logical_relations(problem.source_schema, mode=MODIFIED)
        target = logical_relations(problem.target_schema, mode=MODIFIED)
        generation = generate_candidates(source, target, problem.correspondences)
        unbound = [p for p in generation.pruned if p.rule == "unbound-nonnull"]
        assert any("C1.name" in p.reason for p in unbound)

    def test_fk_exempts_nonnull_attribute(self):
        # A.5: the nullable FK Pt.data is non-null and unbound but has a
        # foreign key, so the candidate survives.
        from repro.scenarios.appendix_a import example_a5

        problem = example_a5()
        source = logical_relations(problem.source_schema, mode=MODIFIED)
        target = logical_relations(problem.target_schema, mode=MODIFIED)
        generation = generate_candidates(source, target, problem.correspondences)
        big = [
            c
            for c in generation.candidates
            if tuple(a.relation for a in c.target_tableau.atoms) == ("Pt", "PDt")
        ]
        assert len(big) == 1


class TestBindings:
    def test_binding_maps_target_variables(self):
        generation = _figure1_generation()
        full = next(
            c
            for c in generation.candidates
            if len(c.selection) == 7
        )
        theta, extra = full.binding()
        assert not extra
        # o1 and c1 both bind C2.car: same target variable, and the source
        # terms (O3.car and C3.car) coincide in the joined source tableau.
        assert len(theta) == 5  # car, model, person + P2.name, P2.email ... car/person shared

    def test_conflicting_binding_produces_equality(self):
        # Two correspondences into the same target attribute from different
        # source attributes yield a source-side equality.
        from repro.core.pipeline import MappingProblem
        from repro.model.builder import SchemaBuilder

        source = SchemaBuilder("s").relation("S", "k", "a", "b").build()
        target = SchemaBuilder("t").relation("T", "k", "v").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("S.k", "T.k")
        problem.add_correspondence("S.a", "T.v")
        problem.add_correspondence("S.b", "T.v")
        generation = generate_candidates(
            logical_relations(source), logical_relations(target), problem.correspondences
        )
        [candidate] = generation.candidates
        theta, extra = candidate.binding()
        assert len(extra) == 1
