"""Tests for query generation end to end (Algorithms 2 and 4, Example 6.8)."""

import pytest

from repro.core.query_generation import (
    build_program,
    generate_queries,
    rewrite_to_unitary,
)
from repro.core.schema_mapping import BASIC, NOVEL, generate_schema_mapping
from repro.errors import QueryGenerationError
from repro.logic.terms import NULL_TERM, SkolemTerm
from repro.scenarios import cars


def _schema_mapping(problem, algorithm=NOVEL):
    return generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences, algorithm
    ).schema_mapping


class TestUnitaryRewriting:
    def test_example_6_1(self, figure1_problem):
        from repro.core.skolem import skolemize_schema_mapping

        schema_mapping = _schema_mapping(figure1_problem)
        skolemized = skolemize_schema_mapping(
            list(schema_mapping), figure1_problem.target_schema
        )
        unitary = rewrite_to_unitary(skolemized)
        # m1 -> 1, m2 -> 1, m3 -> 2 unitary mappings.
        assert [(m.origin, m.consequent.relation) for m in unitary] == [
            ("m1", "P2"),
            ("m2", "C2"),
            ("m3", "C2"),
            ("m3", "P2"),
        ]
        # Provenance names are per-original, per-consequent.
        assert [m.name for m in unitary] == ["m1.1", "m2.1", "m3.1", "m3.2"]

    def test_premise_shared_between_siblings(self, figure1_problem):
        from repro.core.skolem import skolemize_schema_mapping

        schema_mapping = _schema_mapping(figure1_problem)
        skolemized = skolemize_schema_mapping(
            list(schema_mapping), figure1_problem.target_schema
        )
        unitary = rewrite_to_unitary(skolemized)
        assert unitary[2].premise is unitary[3].premise


class TestExample68:
    """Example 6.8: the final transformation for the Figure 1 problem."""

    def test_rules(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem))
        rules = {
            (
                r.head_relation,
                tuple(a.relation for a in r.body),
                len(r.negated),
            )
            for r in result.program.rules
        }
        assert rules == {
            ("P2", ("P3",), 0),
            ("C2", ("C3",), 1),
            ("C2", ("O3", "C3", "P3"), 0),
            ("OCtmp", ("O3", "C3", "P3"), 0),
        }

    def test_null_head_value(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem))
        negated = next(r for r in result.program.rules if r.negated)
        assert negated.head.terms[2] is NULL_TERM

    def test_subsumed_rule_dropped(self, figure1_problem):
        # "the second rule can be dropped, since it is subsumed by the first"
        result = generate_queries(_schema_mapping(figure1_problem))
        p2_rules = result.program.rules_for("P2")
        assert len(p2_rules) == 1
        assert [a.relation for a in p2_rules[0].body] == ["P3"]

    def test_optimization_can_be_disabled(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem), optimize=False)
        assert len(result.program.rules_for("P2")) == 2

    def test_tmp_relation_named_from_premise(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem))
        assert "OCtmp" in result.program.intermediates
        assert result.program.intermediates["OCtmp"] == 1


class TestTmpSharing:
    def test_example_c2_shares_tmp_relations(self):
        # Rules 1 and 2 of Example C.2 share OCtmp; rules 1 and 3 share DCtmp.
        problem = cars.figure12_problem()
        result = generate_queries(_schema_mapping(problem))
        assert set(result.program.intermediates) == {"OCtmp", "DCtmp"}
        negation_uses = sum(len(r.negated) for r in result.program.rules)
        assert negation_uses == 4  # 2 + 1 + 1

    def test_example_c2_rule_count(self):
        problem = cars.figure12_problem()
        result = generate_queries(_schema_mapping(problem))
        # 3 rewritten + 1 fused + 2 tmp rules (paper's six rules).
        assert len(result.program.rules) == 6


class TestBasicAlgorithm:
    def test_example_2_1_basic_program(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem, BASIC), algorithm=BASIC)
        program = result.program
        assert not program.intermediates  # no negation in the basic algorithm
        c2_heads = [r.head for r in program.rules_for("C2")]
        invented = [
            h for h in c2_heads if isinstance(h.terms[2], SkolemTerm)
        ]
        assert len(invented) == 1  # C2(c, m, f_P(c, m)) <- C3(c, m)
        assert len(invented[0].terms[2].args) == 2  # Source-and-RHS: (c, m)

    def test_basic_keeps_invented_person_rule(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem, BASIC), algorithm=BASIC)
        p2_rules = result.program.rules_for("P2")
        bodies = {tuple(a.relation for a in r.body) for r in p2_rules}
        assert ("C3",) in bodies  # P2(f_P(c,m), f_N(c,m), f_E(c,m)) <- C3(c,m)


class TestErrors:
    def test_unknown_algorithm(self, figure1_problem):
        with pytest.raises(QueryGenerationError):
            generate_queries(_schema_mapping(figure1_problem), algorithm="nope")


class TestBuildProgram:
    def test_program_validates(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem))
        result.program.validate()

    def test_result_carries_artifacts(self, figure1_problem):
        result = generate_queries(_schema_mapping(figure1_problem))
        assert len(result.skolemized) == 3
        assert len(result.unitary) == 4
        assert len(result.final) == 4
        assert result.resolution is not None
        assert len(result.resolution.conflicts) == 1
