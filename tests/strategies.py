"""Shared hypothesis strategies backed by the scenario generator.

One valid-instance builder for every property-based suite: the generator's
:func:`~repro.scenarios.generator.build_instance` does the two-phase
construction (keys first, then foreign-key-closed rows), and the
:class:`DrawChooser` here routes its decisions through a hypothesis
``data.draw`` so shrinking works.  The fixed fuzz schema pool and the
correspondence-pair strategy that ``tests/test_fuzz_pipeline.py`` always
used live here too, so the fuzz and soundness suites share one vocabulary
instead of per-file copies.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.pipeline import MappingProblem
from repro.model.builder import SchemaBuilder
from repro.model.instance import Instance
from repro.model.schema import Schema
from repro.scenarios.generator import SMALL, build_instance, generate_scenario
from repro.scenarios.generator.instances import PAYLOAD_POOL


class DrawChooser:
    """:func:`build_instance` chooser backed by a hypothesis ``data.draw``.

    Implements the same four-method interface as
    :class:`~repro.scenarios.generator.RandomChooser`, so the construction
    logic is written once and both the seeded generator and the
    property-based tests get valid-by-construction instances from it.
    """

    def __init__(self, draw):
        self._draw = draw

    def size(self, lo: int, hi: int) -> int:
        return self._draw(st.integers(lo, hi))

    def index(self, n: int) -> int:
        return self._draw(st.integers(0, n - 1))

    def flag(self, probability: float) -> bool:
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._draw(st.booleans())

    def value(self, relation: str, attribute: str, row: int) -> str:
        return self._draw(
            st.sampled_from(PAYLOAD_POOL + (f"{relation}.{attribute}.{row}",))
        )


def draw_valid_instance(
    draw,
    schema: Schema,
    rows: tuple[int, int] = (0, 3),
    null_fraction: float = 0.5,
) -> Instance:
    """A hypothesis-drawn instance: unique keys, resolved foreign keys."""
    return build_instance(
        schema, DrawChooser(draw), rows=rows, null_fraction=null_fraction
    )


def fuzz_source_schema() -> Schema:
    """The fixed source pool the pipeline fuzzers sample correspondences from."""
    return (
        SchemaBuilder("fuzz-src")
        .relation("S1", "k", "a", "b?")
        .relation("S2", "k", "c")
        .relation("S3", "k", "ref?", "d")
        .foreign_key("S3", "ref", "S1")
        .build()
    )


def fuzz_target_schema() -> Schema:
    return (
        SchemaBuilder("fuzz-tgt")
        .relation("T1", "k", "x?", "y")
        .relation("T2", "k", "z?")
        .build()
    )


FUZZ_SOURCE_ATTRS = [
    "S1.k", "S1.a", "S1.b", "S2.k", "S2.c", "S3.k", "S3.d",
    "S3.ref > S1.a", "S3.ref > S1.b",
]
FUZZ_TARGET_ATTRS = ["T1.k", "T1.x", "T1.y", "T2.k", "T2.z"]


@st.composite
def fuzz_problems(draw) -> MappingProblem:
    """Random correspondence sets over the fixed fuzz schema pool."""
    pairs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(FUZZ_SOURCE_ATTRS),
                st.sampled_from(FUZZ_TARGET_ATTRS),
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    problem = MappingProblem(fuzz_source_schema(), fuzz_target_schema(), name="fuzz")
    for source, target in pairs:
        problem.add_correspondence(source, target)
    return problem


@st.composite
def fuzz_instances(draw) -> Instance:
    """Valid instances of the fuzz source schema (relations may be empty)."""
    return draw_valid_instance(draw, fuzz_source_schema(), rows=(0, 4))


#: Whole generated scenarios over the SMALL preset — random schemas *and*
#: random correspondences, complementing the fixed-pool fuzzers above.
generated_scenarios = st.builds(
    generate_scenario, st.integers(0, 499), st.just(SMALL)
)
