"""Property-based tests (hypothesis) for the core invariants.

The big end-to-end property is the paper's thesis: on *any* valid CARS3
source instance, the novel pipeline's output satisfies every target
constraint and equals the canonical universal solution under the null
policy, while the SQL backend agrees with the Datalog engine everywhere.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.pipeline import MappingProblem, MappingSystem
from repro.core.schema_mapping import BASIC
from repro.datalog.engine import evaluate
from repro.exchange.instance_chase import canonical_universal_solution
from repro.exchange.solutions import is_homomorphic_to
from repro.logic.satisfiability import TermSolver
from repro.logic.terms import Constant, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder
from repro.model.instance import Instance
from repro.model.validation import validate_instance
from repro.model.values import NULL
from repro.scenarios import cars
from repro.sqlgen.executor import run_on_sqlite
from repro.sqlgen.values import decode_value, encode_value


# ---------------------------------------------------------------------------
# Instance generators
# ---------------------------------------------------------------------------

@st.composite
def cars3_instances(draw):
    """Valid CARS3 instances: owners reference existing cars and persons."""
    n_persons = draw(st.integers(min_value=0, max_value=6))
    n_cars = draw(st.integers(min_value=0, max_value=6))
    instance = Instance(cars.cars3_schema())
    for i in range(n_persons):
        instance.add("P3", (f"p{i}", f"name{i % 3}", f"mail{i}"))
    for i in range(n_cars):
        instance.add("C3", (f"c{i}", f"model{i % 2}"))
    if n_persons and n_cars:
        owned = draw(
            st.lists(
                st.tuples(
                    st.integers(0, n_cars - 1), st.integers(0, n_persons - 1)
                ),
                max_size=n_cars,
            )
        )
        for car, person in {c: p for c, p in owned}.items():
            instance.add("O3", (f"c{car}", f"p{person}"))
    return instance


@st.composite
def cars2_instances(draw):
    """Valid CARS2 instances (nullable owner FK)."""
    n_persons = draw(st.integers(min_value=0, max_value=5))
    n_cars = draw(st.integers(min_value=0, max_value=6))
    instance = Instance(cars.cars2_schema())
    for i in range(n_persons):
        instance.add("P2", (f"p{i}", f"name{i % 3}", f"mail{i}"))
    for i in range(n_cars):
        owner_index = draw(
            st.one_of(st.none(), st.integers(0, max(0, n_persons - 1)))
        )
        owner = NULL if owner_index is None or not n_persons else f"p{owner_index}"
        instance.add("C2", (f"c{i}", f"model{i % 2}", owner))
    return instance


# ---------------------------------------------------------------------------
# End-to-end properties
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(cars3_instances())
def test_novel_output_always_satisfies_constraints(source):
    system = MappingSystem(cars.figure1_problem())
    output = system.transform(source)
    assert validate_instance(output).ok


@settings(max_examples=25, deadline=None)
@given(cars3_instances())
def test_novel_output_equals_canonical_solution(source):
    system = MappingSystem(cars.figure1_problem())
    output = system.transform(source)
    canonical = canonical_universal_solution(
        system.schema_mapping, source, null_for_nullable_existentials=True
    )
    assert output == canonical


@settings(max_examples=20, deadline=None)
@given(cars3_instances())
def test_sql_backend_agrees_with_engine(source):
    system = MappingSystem(cars.figure1_problem())
    assert run_on_sqlite(system.transformation, source) == system.transform(source)


@settings(max_examples=20, deadline=None)
@given(cars3_instances())
def test_novel_embeds_into_basic(source):
    """The novel output never moves *less* certain information."""
    problem = cars.figure1_problem()
    basic = MappingSystem(problem, algorithm=BASIC).transform(source)
    novel = MappingSystem(problem).transform(source)
    # Every constant fact of the novel output is present in the basic one.
    for relation, row in novel.facts():
        if all(isinstance(v, str) for v in row):
            assert row in basic.relation(relation)


@settings(max_examples=25, deadline=None)
@given(cars2_instances())
def test_figure14_roundtrip_preserves_information(source):
    """CARS2 -> CARS3 (Example C.3) keeps persons, cars and ownerships."""
    system = MappingSystem(cars.figure14_problem())
    output = system.transform(source)
    assert validate_instance(output).ok
    assert set(output.relation("P3").rows) == set(source.relation("P2").rows)
    assert len(output.relation("C3")) == len(source.relation("C2"))
    expected_owned = {
        (row[0], row[2]) for row in source.relation("C2") if row[2] is not NULL
    }
    assert set(output.relation("O3").rows) == expected_owned


@settings(max_examples=20, deadline=None)
@given(cars2_instances())
def test_roundtrip_cars2_to_cars3_and_back(source):
    """C.3 forward then Figure 1 backward reproduces the original CARS2."""
    forward = MappingSystem(cars.figure14_problem())
    backward = MappingSystem(cars.figure1_problem())
    assert backward.transform(forward.transform(source)) == source


# ---------------------------------------------------------------------------
# Solver properties
# ---------------------------------------------------------------------------

_term_pool = st.integers(min_value=0, max_value=5)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(_term_pool, _term_pool), max_size=12))
def test_solver_union_is_equivalence_relation(pairs):
    variables = [Variable(f"v{i}") for i in range(6)]
    solver = TermSolver()
    for left, right in pairs:
        solver.assert_equal(variables[left], variables[right])
    assert not solver.clashed
    # reflexive, symmetric, transitive closure check
    for i in range(6):
        assert solver.equal(variables[i], variables[i])
    for left, right in pairs:
        assert solver.equal(variables[left], variables[right])
        assert solver.equal(variables[right], variables[left])


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(_term_pool, _term_pool), max_size=10),
    st.integers(0, 5),
    st.integers(0, 5),
)
def test_solver_congruence_follows_args(pairs, a, b):
    variables = [Variable(f"v{i}") for i in range(6)]
    solver = TermSolver()
    fa = SkolemTerm("f", [variables[a]])
    fb = SkolemTerm("f", [variables[b]])
    solver.find(fa)
    solver.find(fb)
    for left, right in pairs:
        solver.assert_equal(variables[left], variables[right])
    if solver.equal(variables[a], variables[b]):
        assert solver.equal(fa, fb)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), min_size=1, max_size=4))
def test_solver_constant_merging(values):
    solver = TermSolver()
    x = Variable("x")
    for value in values:
        solver.assert_equal(x, Constant(value))
    distinct = set(values)
    assert solver.clashed == (len(distinct) > 1)


# ---------------------------------------------------------------------------
# SQL value encoding round-trip
# ---------------------------------------------------------------------------

_value_strategy = st.recursive(
    st.one_of(
        st.just(NULL),
        st.text(
            alphabet=st.characters(blacklist_characters="\x02", blacklist_categories=("Cs",)),
            max_size=8,
        ),
    ),
    lambda children: st.builds(
        lambda functor, args: __import__("repro.model.values", fromlist=["LabeledNull"]).LabeledNull(
            functor, tuple(args)
        ),
        st.text(alphabet="fgh_@123", min_size=1, max_size=6),
        st.lists(children, max_size=3),
    ),
    max_leaves=6,
)


@settings(max_examples=100, deadline=None)
@given(_value_strategy)
def test_sql_value_encoding_roundtrip(value):
    # The length-prefixed encoding is injective: separators, parentheses,
    # empty strings and the literal "null" inside argument values all
    # round-trip.  The only out-of-scope inputs are plain strings carrying
    # the reserved \x02 prefix — already excluded by the strategy alphabet.
    assert decode_value(encode_value(value)) == value


# ---------------------------------------------------------------------------
# Chase properties
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=4))
def test_chain_chase_tableau_count(depth):
    from repro.core.chase import chase_relation
    from repro.scenarios.synthetic import chain_schema

    schema = chain_schema(depth, nullable_links=True)
    tableaux = chase_relation(schema, "R0")
    assert len(tableaux) == depth + 1
    assert sorted(len(t) for t in tableaux) == list(range(1, depth + 2))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4))
def test_wide_problem_candidate_explosion_is_pruned(n_nullable):
    """2**n target tableaux, but the schema mapping stays linear in n.

    With one mandatory source, only the all-non-null target variant is
    covered compatibly; the nullable pruning rules kill the rest.
    """
    from repro.scenarios.synthetic import wide_problem

    problem = wide_problem(n_nullable)
    system = MappingSystem(problem)
    assert len(system.schema_mapping) == 1
