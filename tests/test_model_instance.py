"""Tests for relations and instances."""

import pytest

from repro.errors import InstanceError
from repro.model.instance import Instance, Relation, instance_from_dict
from repro.model.schema import RelationSchema
from repro.model.values import NULL, LabeledNull


@pytest.fixture
def person_relation():
    return Relation(RelationSchema("P", ["person", "name"]))


class TestRelation:
    def test_add_and_set_semantics(self, person_relation):
        assert person_relation.add(("p1", "John"))
        assert not person_relation.add(("p1", "John"))  # duplicate
        assert len(person_relation) == 1

    def test_arity_checked(self, person_relation):
        with pytest.raises(InstanceError):
            person_relation.add(("p1",))

    def test_add_named(self, person_relation):
        person_relation.add_named(person="p1", name="John")
        assert ("p1", "John") in person_relation

    def test_add_named_missing_attribute(self, person_relation):
        with pytest.raises(InstanceError):
            person_relation.add_named(person="p1")

    def test_add_named_unknown_attribute(self, person_relation):
        with pytest.raises(InstanceError):
            person_relation.add_named(person="p1", name="x", extra=1)

    def test_discard(self, person_relation):
        person_relation.add(("p1", "John"))
        assert person_relation.discard(("p1", "John"))
        assert not person_relation.discard(("p1", "John"))
        assert len(person_relation) == 0

    def test_projection(self, person_relation):
        person_relation.add(("p1", "John"))
        person_relation.add(("p2", "John"))
        assert person_relation.project(["name"]) == {("John",)}
        assert person_relation.project(["person", "name"]) == {
            ("p1", "John"),
            ("p2", "John"),
        }

    def test_index_on(self, person_relation):
        person_relation.add(("p1", "John"))
        person_relation.add(("p2", "John"))
        index = person_relation.index_on((1,))
        assert sorted(index[("John",)]) == [("p1", "John"), ("p2", "John")]

    def test_index_invalidated_on_add(self, person_relation):
        person_relation.add(("p1", "John"))
        person_relation.index_on((1,))
        person_relation.add(("p3", "Mary"))
        assert ("Mary",) in person_relation.index_on((1,))

    def test_value_accessor(self, person_relation):
        person_relation.add(("p1", "John"))
        row = person_relation.rows[0]
        assert person_relation.value(row, "name") == "John"

    def test_null_values_allowed(self, person_relation):
        person_relation.add(("p1", NULL))
        assert ("p1", NULL) in person_relation

    def test_to_text_contains_rows(self, person_relation):
        person_relation.add(("p1", "John"))
        text = person_relation.to_text()
        assert "P" in text and "John" in text

    def test_equality(self):
        schema = RelationSchema("P", ["a"])
        left, right = Relation(schema), Relation(schema)
        left.add(("x",))
        right.add(("x",))
        assert left == right

    def test_not_hashable(self, person_relation):
        with pytest.raises(TypeError):
            hash(person_relation)


class TestInstance:
    def test_from_dict_and_equality(self, cars3):
        a = instance_from_dict(cars3, {"P3": [("p1", "n", "e")]})
        b = instance_from_dict(cars3, {"P3": [("p1", "n", "e")]})
        assert a == b
        b.add("C3", ("c1", "Ford"))
        assert a != b

    def test_total_size(self, cars3_instance):
        assert cars3_instance.total_size() == 5

    def test_unknown_relation(self, cars3):
        instance = Instance(cars3)
        with pytest.raises(InstanceError):
            instance.relation("missing")

    def test_copy_is_independent(self, cars3_instance):
        clone = cars3_instance.copy()
        clone.add("C3", ("c99", "Lada"))
        assert cars3_instance.total_size() == 5
        assert clone.total_size() == 6

    def test_facts_iteration(self, cars3_instance):
        facts = list(cars3_instance.facts())
        assert ("O3", ("c85", "p22")) in facts
        assert len(facts) == 5

    def test_labeled_null_values(self, cars2):
        instance = Instance(cars2)
        invented = LabeledNull("f_person", ("c1",))
        instance.add("C2", ("c1", "Ford", invented))
        assert ("c1", "Ford", invented) in instance.relation("C2")

    def test_to_text_skips_empty(self, cars3):
        instance = Instance(cars3)
        assert instance.to_text() == "(empty instance)"
        instance.add("C3", ("c1", "Ford"))
        assert "C3" in instance.to_text()
