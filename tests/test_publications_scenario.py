"""End-to-end tests for the bibliography-consolidation scenario."""

from repro.core.pipeline import MappingSystem
from repro.dsl.report import explain
from repro.exchange.analysis import analyze_transformation
from repro.model.validation import validate_instance
from repro.scenarios.publications import (
    digest_expected_target,
    digest_problem,
    pubs_source_instance,
)
from repro.sqlgen import run_on_sqlite


def test_schema_mapping_shape():
    system = MappingSystem(digest_problem())
    premises = {
        tuple(sorted(a.relation for a in m.premise.atoms))
        for m in system.schema_mapping
    }
    # Papers with venues; awarded papers; current venues.
    assert ("Paper", "Venue") in premises
    assert ("Award", "Paper", "Venue") in premises
    assert ("Venue",) in premises


def test_transformation_output_exact():
    system = MappingSystem(digest_problem())
    output = system.transform(pubs_source_instance())
    assert output == digest_expected_target()
    assert validate_instance(output).ok


def test_award_conflict_resolved_with_negation():
    system = MappingSystem(digest_problem())
    resolution = system.query_result().resolution
    assert resolution is not None
    conflicts = [c for c in resolution.conflicts if c.attribute == "prize"]
    assert len(conflicts) == 1
    assert not conflicts[0].is_hard
    # The null-prize mapping is disabled when an award exists.
    negated = [m for m in system.query_result().final if m.premise.negated]
    assert negated


def test_filter_restricts_current_venues():
    problem = digest_problem(current_year="2023")
    output = MappingSystem(problem).transform(pubs_source_instance())
    assert set(output.relation("CurrentVenue").rows) == {("v2", "VLDB")}


def test_sqlite_parity_with_enforced_constraints():
    system = MappingSystem(digest_problem())
    source = pubs_source_instance()
    assert run_on_sqlite(
        system.transformation, source, enforce_constraints=True
    ) == system.transform(source)


def test_analysis_is_canonical():
    system = MappingSystem(digest_problem())
    analysis = analyze_transformation(system, pubs_source_instance())
    assert analysis.validation.ok
    assert analysis.is_canonical_null_policy
    assert analysis.is_universal


def test_explain_runs():
    text = explain(MappingSystem(digest_problem()))
    assert "Pub" in text and "CurrentVenue" in text


def test_scaled_instance():
    import random

    problem = digest_problem()
    from repro.model.instance import Instance

    rng = random.Random(11)
    source = Instance(problem.source_schema)
    for v in range(20):
        source.add("Venue", (f"v{v}", f"venue{v}", str(2015 + v % 10)))
    for p in range(100):
        source.add("Person", (f"p{p}", f"name{p}", f"m{p}@x"))
    for d in range(500):
        source.add("Paper", (f"d{d}", f"title{d}", f"v{rng.randrange(20)}"))
        if rng.random() < 0.1:
            source.add("Award", (f"d{d}", "prize"))
        for a in range(rng.randrange(3)):
            source.add("Authorship", (f"d{d}", f"p{rng.randrange(100)}", str(a)))
    output = MappingSystem(problem).transform(source)
    assert len(output.relation("Pub")) == 500
    assert validate_instance(output).ok
