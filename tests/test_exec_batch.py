"""Unit tests for the batch runtime's planner and executor internals."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.datalog.exec import (
    BatchStore,
    Interner,
    evaluate_batch,
    order_atoms,
    plan_program,
    plan_rule,
)
from repro.datalog.program import DatalogProgram, Rule
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Constant, Variable
from repro.model.builder import SchemaBuilder
from repro.model.instance import instance_from_dict
from repro.obs import Tracer, use_tracer
from repro.scenarios import bundled_problems


def V(name):
    return Variable(name)


class TestOrderAtoms:
    def test_starts_from_smallest_relation(self):
        x, y, z = V("x"), V("y"), V("z")
        atoms = (
            RelationalAtom("Big", (x, y)),
            RelationalAtom("Small", (y, z)),
        )
        assert order_atoms(atoms, {"Big": 1000, "Small": 3}) == [1, 0]
        assert order_atoms(atoms, {"Big": 3, "Small": 1000}) == [0, 1]

    def test_prefers_connected_atoms(self):
        x, y, z = V("x"), V("y"), V("z")
        # After starting from A, B shares a variable with it while C does
        # not: B must be joined before the cross product with C.
        atoms = (
            RelationalAtom("A", (x,)),
            RelationalAtom("C", (z,)),
            RelationalAtom("B", (x, y)),
        )
        order = order_atoms(atoms, {"A": 1, "B": 100, "C": 100})
        assert order.index(2) < order.index(1)

    def test_constant_filters_break_size_ties(self):
        x = V("x")
        atoms = (
            RelationalAtom("R", (x, x)),
            RelationalAtom("S", (x, Constant("c"))),
        )
        # Equal sizes: the atom with more bound positions (constant plus
        # the repeated variable counts per atom) starts the pipeline.
        order = order_atoms(atoms, {"R": 10, "S": 10})
        assert len(order) == 2 and sorted(order) == [0, 1]

    def test_deterministic(self):
        x, y, z = V("x"), V("y"), V("z")
        atoms = (
            RelationalAtom("A", (x, y)),
            RelationalAtom("B", (y, z)),
            RelationalAtom("C", (z, x)),
        )
        stats = {"A": 5, "B": 7, "C": 2}
        assert order_atoms(atoms, stats) == order_atoms(atoms, stats)


class TestInterner:
    def test_equal_values_become_one_object(self):
        interner = Interner()
        a = interner.intern("x" * 40)
        b = interner.intern("xxxxx" * 8)
        assert a == b and a is b

    def test_intern_row(self):
        interner = Interner()
        row1 = interner.intern_row(("k1", 1))
        row2 = interner.intern_row(("k" + "1", 1))
        assert row1 == row2
        assert row1[0] is row2[0]


class TestBatchStore:
    def test_readd_invalidates_indexes(self):
        store = BatchStore()
        store.add_relation("S", [("a", 1), ("b", 2)])
        assert set(store.index("S", (0,))) == {("a",), ("b",)}
        store.add_relation("S", [("c", 3)])
        assert set(store.index("S", (0,))) == {("c",)}

    def test_sizes(self):
        store = BatchStore()
        store.add_relation("S", [("a",), ("b",), ("a",)])
        store.add_relation("R", [])
        assert store.sizes() == {"S": 2, "R": 0}


def _figure1_program():
    return MappingSystem(bundled_problems()["figure-1"]).transformation


class TestCounters:
    def _source(self):
        schema = (
            SchemaBuilder("CARS3")
            .relation("P3", "person", "name", "email", key="person")
            .relation("C3", "car", "model", key="car")
            .relation("O3", "car", "person", key="car")
            .foreign_key("O3", "car", "C3")
            .foreign_key("O3", "person", "P3")
            .build()
        )
        return instance_from_dict(
            schema,
            {
                "P3": [("p1", "John", "j@x"), ("p2", "MJ", "mj@x")],
                "C3": [("c1", "Ferrari"), ("c2", "Ford")],
                "O3": [("c1", "p2")],
            },
        )

    def test_batch_and_index_reuse_counters(self):
        program = _figure1_program()
        tracer = Tracer()
        with use_tracer(tracer):
            evaluate_batch(program, self._source())
        assert tracer.counters.get("eval.batches", 0) > 0
        # Figure 1 reads C3/P3 from two rules on the same key positions:
        # the second rule must hit the cached index.
        assert tracer.counters.get("eval.index_reuse", 0) > 0

    def test_counters_are_free_when_tracing_is_off(self):
        program = _figure1_program()
        result = evaluate_batch(program, self._source())
        assert result.target.total_size() > 0


class TestPlanRendering:
    def test_every_rule_is_planned(self):
        program = _figure1_program()
        plan = plan_program(program)
        assert len(plan.all_plans()) == len(program.rules)

    def test_plan_rule_live_stats_change_estimates(self):
        program = _figure1_program()
        rule = program.rules[-1]
        cold = plan_rule(rule, {})
        warm = plan_rule(rule, {atom.relation: 50 for atom in rule.body})
        assert cold.scan.rows_estimate == 0
        assert warm.scan.rows_estimate == 50
