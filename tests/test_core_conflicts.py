"""Tests for key-conflict identification (Example 6.3 and friends)."""

from repro.core.conflicts import (
    COPY,
    INVENT,
    NULL_KIND,
    find_all_conflicts,
    find_key_conflicts,
    conflicting_sets,
    term_kind,
)
from repro.core.query_generation import rewrite_to_unitary
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.scenarios import cars


def _unitary(problem):
    result = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    )
    skolemized = skolemize_schema_mapping(
        list(result.schema_mapping), problem.target_schema
    )
    return problem, rewrite_to_unitary(skolemized)


class TestTermKind:
    def test_kinds(self):
        assert term_kind(Variable("x")) == COPY
        assert term_kind(Constant("c")) == COPY
        assert term_kind(NULL_TERM) == NULL_KIND
        assert term_kind(SkolemTerm("f", [])) == INVENT


class TestExample63:
    """Example 6.3 on the Figure 1 problem."""

    def test_p2_mappings_do_not_conflict(self, figure1_problem):
        problem, unitary = _unitary(figure1_problem)
        p2_mappings = conflicting_sets(unitary)["P2"]
        assert len(p2_mappings) == 2
        conflicts = find_key_conflicts(
            p2_mappings[0], p2_mappings[1], problem.source_schema, problem.target_schema
        )
        assert conflicts == []  # the fourth generates a subset of the first

    def test_c2_mappings_soft_conflict_on_person(self, figure1_problem):
        problem, unitary = _unitary(figure1_problem)
        c2_mappings = conflicting_sets(unitary)["C2"]
        assert len(c2_mappings) == 2
        conflicts = find_key_conflicts(
            c2_mappings[0], c2_mappings[1], problem.source_schema, problem.target_schema
        )
        assert len(conflicts) == 1
        [conflict] = conflicts
        assert conflict.attribute == "person"
        assert {conflict.left_kind, conflict.right_kind} == {NULL_KIND, COPY}
        assert not conflict.is_hard
        # The copying mapping is preferred.
        preferred = (
            conflict.left if conflict.preferred == "left" else conflict.right
        )
        assert term_kind(preferred.consequent.terms[2]) == COPY

    def test_no_conflict_on_model(self, figure1_problem):
        # The key c determines model via C3's key in both premises.
        problem, unitary = _unitary(figure1_problem)
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        assert all(c.attribute != "model" for c in conflicts)


class TestExampleC1Conflicts:
    def test_invented_key_never_conflicts(self):
        # C.1: the C3 -> P2a mapping invents its key, so it cannot conflict.
        problem, unitary = _unitary(cars.figure10_problem())
        p2a = conflicting_sets(unitary)["P2a"]
        assert len(p2a) == 3
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        p2a_conflicts = [c for c in conflicts if c.left.consequent.relation == "P2a"]
        assert p2a_conflicts == []

    def test_c2a_soft_conflict_on_person(self):
        problem, unitary = _unitary(cars.figure10_problem())
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        c2a = [c for c in conflicts if c.left.consequent.relation == "C2a"]
        assert len(c2a) == 1
        assert c2a[0].attribute == "person"
        assert {c2a[0].left_kind, c2a[0].right_kind} == {INVENT, COPY}


class TestExampleC2Conflicts:
    def test_pairwise_preferences(self):
        problem, unitary = _unitary(cars.figure12_problem())
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        # m1 vs m2 on o_name, m1 vs m3 on d_name, m2 vs m3 on both.
        attributes = sorted(c.attribute for c in conflicts)
        assert attributes == ["d_name", "d_name", "o_name", "o_name"]
        assert all(not c.is_hard for c in conflicts)


class TestExample67Conflicts:
    def test_equal_preference_invent_invent(self):
        from repro.scenarios.appendix_c import example_6_7_problem

        problem, unitary = _unitary(example_6_7_problem())
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        by_attribute = {}
        for conflict in conflicts:
            by_attribute.setdefault(conflict.attribute, []).append(conflict)
        assert set(by_attribute) == {"a", "b", "x"}
        [x_conflict] = by_attribute["x"]
        assert x_conflict.preferred == "equal"
        assert x_conflict.left_kind == INVENT and x_conflict.right_kind == INVENT


class TestHardConflicts:
    def test_two_copies_conflict_hard(self):
        from repro.core.pipeline import MappingProblem
        from repro.model.builder import SchemaBuilder

        source = (
            SchemaBuilder("src")
            .relation("A", "k", "v")
            .relation("B", "k", "v")
            .build()
        )
        target = SchemaBuilder("tgt").relation("T", "k", "v").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "T.k")
        problem.add_correspondence("A.v", "T.v")
        problem.add_correspondence("B.k", "T.k")
        problem.add_correspondence("B.v", "T.v")
        problem, unitary = _unitary(problem)
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        assert any(c.is_hard for c in conflicts)
        assert "T.v" in str(conflicts[0]) or "v" in str(conflicts[0])
