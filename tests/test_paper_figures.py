"""Integration tests reproducing every figure of the paper's main body.

Each test runs the full pipeline on the figure's mapping problem and source
instance, and compares the transformation output with the instance the paper
prints (up to invented-value renaming where values are invented).
"""

from repro.core.pipeline import MappingSystem
from repro.core.schema_mapping import BASIC
from repro.exchange.metrics import measure_instance
from repro.exchange.solutions import homomorphically_equivalent
from repro.model.values import NULL, is_labeled_null
from repro.scenarios import cars


class TestFigures2And3:
    """Example 2.1: the basic (Figure 2) vs novel (Figure 3) transformations."""

    def test_figure3_exact(self, figure1_problem, cars3_instance):
        system = MappingSystem(figure1_problem)
        assert system.transform(cars3_instance) == cars.figure3_expected_target()

    def test_figure2_shape(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC)
        output = basic.transform(cars3_instance)
        # P2: two real persons plus two invented ones.
        p2 = output.relation("P2")
        assert len(p2) == 4
        invented_persons = [r for r in p2 if is_labeled_null(r[0])]
        assert len(invented_persons) == 2
        # C2: c85 twice (once with the real owner, once invented), c86 once.
        c2_by_car = {}
        for row in output.relation("C2"):
            c2_by_car.setdefault(row[0], []).append(row)
        assert len(c2_by_car["c85"]) == 2
        assert len(c2_by_car["c86"]) == 1
        owners = {row[2] for row in c2_by_car["c85"]}
        assert "p22" in owners
        assert any(is_labeled_null(o) for o in owners)

    def test_quality_gap(self, figure1_problem, cars3_instance):
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        assert measure_instance(basic).key_violations > 0
        assert measure_instance(novel).ok


class TestFigures5And6:
    """Example 2.2: plain correspondences (Figure 5) vs r-a (Figure 6)."""

    def test_figure5_invents_cars(self, cars3_instance):
        system = MappingSystem(cars.figure4_problem())
        output = system.transform(cars3_instance)
        c1 = output.relation("C1")
        real = [r for r in c1 if not is_labeled_null(r[0])]
        invented = [r for r in c1 if is_labeled_null(r[0])]
        assert {(r[0], r[1], r[2]) for r in real} == {
            ("c85", "Ferrari", "MJ"),
            ("c86", "Ford", NULL),
        }
        # One invented car per person.
        assert len(invented) == 2
        assert {r[2] for r in invented} == {"John", "MJ"}

    def test_figure6_exact(self, cars3_instance):
        system = MappingSystem(cars.figure4_ra_problem())
        assert system.transform(cars3_instance) == cars.figure6_expected_target()


class TestFigure8:
    """Section 3.2: the baseline transformation CARS2a -> CARS3."""

    def test_exact(self):
        system = MappingSystem(cars.figure7_problem(), algorithm=BASIC)
        output = system.transform(cars.figure8_source_instance())
        assert output == cars.figure8_expected_target()

    def test_novel_agrees_here(self):
        # No nullable attributes and no conflicting keys: the novel pipeline
        # computes the same instance.
        system = MappingSystem(cars.figure7_problem())
        output = system.transform(cars.figure8_source_instance())
        assert output == cars.figure8_expected_target()


class TestFigure9:
    """Example 4.1: mandatory target names invented only for ownerless cars."""

    def test_transformation_shape(self, cars3_instance):
        system = MappingSystem(cars.figure9_problem())
        output = system.transform(cars3_instance)
        rows = {row[0]: row for row in output.relation("C1a")}
        assert rows["c85"][2] == "MJ"
        assert is_labeled_null(rows["c86"][2])  # f_N(c86, Ford)-style
        assert len(rows) == 2


class TestFigure11:
    """Example C.1: CARS3 -> CARS2a with a mandatory owner."""

    def test_shape(self, cars3_instance):
        system = MappingSystem(cars.figure10_problem())
        output = system.transform(cars3_instance)
        # P2a: two real persons plus exactly one invented owner (for c86).
        p2a = output.relation("P2a")
        assert len(p2a) == 3
        invented = [r for r in p2a if is_labeled_null(r[0])]
        assert len(invented) == 1
        # C2a: both cars exactly once; c85 keeps its real owner.
        owners = {row[0]: row[2] for row in output.relation("C2a")}
        assert owners["c85"] == "p22"
        assert is_labeled_null(owners["c86"])
        # Referential integrity: the invented owner exists in P2a.
        assert owners["c86"] == invented[0][0]

    def test_no_violations(self, cars3_instance):
        from repro.model.validation import validate_instance

        system = MappingSystem(cars.figure10_problem())
        assert validate_instance(system.transform(cars3_instance)).ok


class TestFigure13:
    """Example C.2: owners and drivers into one relation."""

    def test_exact_with_names(self):
        system = MappingSystem(cars.figure12_problem())
        output = system.transform(cars.figure13_source_instance())
        assert output == cars.figure13_expected_target()


class TestFigure15:
    """Example C.3: a nullable source attribute."""

    def test_exact(self):
        system = MappingSystem(cars.figure14_problem())
        output = system.transform(cars.figure15_source_instance())
        assert output == cars.figure15_expected_target()


class TestCrossCutting:
    def test_novel_outputs_satisfy_constraints_on_all_figures(self):
        from repro.model.validation import validate_instance

        runs = [
            (cars.figure1_problem(), cars.cars3_source_instance()),
            (cars.figure4_ra_problem(), cars.cars3_source_instance()),
            (cars.figure9_problem(), cars.cars3_source_instance()),
            (cars.figure10_problem(), cars.cars3_source_instance()),
            (cars.figure12_problem(), cars.figure13_source_instance()),
            (cars.figure14_problem(), cars.figure15_source_instance()),
        ]
        for problem, source in runs:
            output = MappingSystem(problem).transform(source)
            assert validate_instance(output).ok, problem.name

    def test_homomorphic_equivalence_basic_vs_novel_core(self, figure1_problem, cars3_instance):
        # The novel output embeds into the basic output (it moves the same
        # certain information with fewer artifacts) — but not vice versa.
        basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
        novel = MappingSystem(figure1_problem).transform(cars3_instance)
        assert not homomorphically_equivalent(basic, novel)
