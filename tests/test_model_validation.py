"""Tests for instance-level constraint validation."""

from repro.model.instance import instance_from_dict
from repro.model.validation import validate_instance
from repro.model.values import NULL, LabeledNull


def test_clean_instance(cars3_instance):
    report = validate_instance(cars3_instance)
    assert report.ok
    assert len(report) == 0
    assert "satisfies" in report.summary()


def test_key_violation(cars2):
    instance = instance_from_dict(
        cars2,
        {"C2": [("c1", "Ford", NULL), ("c1", "Ferrari", NULL)]},
    )
    report = validate_instance(instance)
    assert len(report.key_violations) == 1
    violation = report.key_violations[0]
    assert violation.relation == "C2"
    assert violation.key_value == ("c1",)
    assert len(violation.rows) == 2
    assert "c1" in str(violation)


def test_null_in_mandatory_attribute(cars2):
    instance = instance_from_dict(cars2, {"C2": [("c1", NULL, NULL)]})
    report = validate_instance(instance)
    assert len(report.null_violations) == 1
    assert report.null_violations[0].attribute == "model"
    assert not report.ok


def test_null_in_nullable_attribute_is_fine(cars2):
    instance = instance_from_dict(cars2, {"C2": [("c1", "Ford", NULL)]})
    assert validate_instance(instance).ok


def test_foreign_key_violation(cars2):
    instance = instance_from_dict(cars2, {"C2": [("c1", "Ford", "ghost")]})
    report = validate_instance(instance)
    assert len(report.foreign_key_violations) == 1
    violation = report.foreign_key_violations[0]
    assert violation.value == "ghost"
    assert violation.referenced == "P2"
    assert "ghost" in str(violation)


def test_null_fk_satisfies_constraint(cars2):
    instance = instance_from_dict(cars2, {"C2": [("c1", "Ford", NULL)]})
    assert not validate_instance(instance).foreign_key_violations


def test_labeled_null_fk_must_match(cars2):
    invented = LabeledNull("f", ("c1",))
    dangling = instance_from_dict(cars2, {"C2": [("c1", "Ford", invented)]})
    assert len(validate_instance(dangling).foreign_key_violations) == 1
    satisfied = instance_from_dict(
        cars2,
        {
            "C2": [("c1", "Ford", invented)],
            "P2": [(invented, "n", "e")],
        },
    )
    assert not validate_instance(satisfied).foreign_key_violations


def test_composite_key_violation():
    from repro.model.builder import SchemaBuilder

    schema = (
        SchemaBuilder("enroll")
        .relation("E", "course", "student", "grade", key=["course", "student"])
        .build()
    )
    instance = instance_from_dict(
        schema, {"E": [("c1", "s1", "A"), ("c1", "s1", "B"), ("c1", "s2", "A")]}
    )
    report = validate_instance(instance)
    assert len(report.key_violations) == 1
    assert report.key_violations[0].key_value == ("c1", "s1")


def test_report_aggregation(cars2):
    instance = instance_from_dict(
        cars2,
        {
            "C2": [
                ("c1", NULL, "ghost"),
                ("c1", "Ford", NULL),
            ]
        },
    )
    report = validate_instance(instance)
    assert len(report.null_violations) == 1
    assert len(report.key_violations) == 1
    assert len(report.foreign_key_violations) == 1
    assert len(report.all_violations()) == 3
    assert "1 null violation" in report.summary()


def test_diagnostics_carry_declaration_spans():
    """INS* diagnostics locate the violated constraint's DSL declaration."""
    from repro.dsl.parser import parse_schema

    schema = parse_schema(
        """
        relation U (u key)
        relation T (k key, a, r? -> U)
        """
    )
    instance = instance_from_dict(
        schema,
        {
            "T": [
                ("k1", NULL, "ghost"),
                ("k1", "x", NULL),
            ]
        },
    )
    report = validate_instance(instance)
    items = {item.code: item for item in report.diagnostics()}
    assert set(items) == {"INS001", "INS002", "INS003"}
    for item in items.values():
        assert item.span is not None, item.code
