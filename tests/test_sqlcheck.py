"""Tests for the SQL translation validator and the compiled pipeline.

The acceptance bar of the SQL pushdown work: on every bundled scenario,
every emitted statement gets a PROVED round-trip verdict, and the compiled
pipeline's output matches the reference engine up to invented-null
isomorphism.  The structural lints (SQL002–SQL005) are exercised on
hand-built trees the compiler itself never emits.
"""

import pytest

from repro.analysis.semantic.verifier import canonical_instances
from repro.analysis.sqlcheck import (
    PROVED,
    UNKNOWN,
    check_pipeline,
    check_program,
    lower_statement,
)
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.errors import EvaluationError
from repro.model.diff import diff_up_to_invented
from repro.scenarios import bundled_problems
from repro.sqlgen import SqliteExecutor, compile_program
from repro.sqlgen.ast import (
    Cast,
    Cmp,
    Col,
    Concat,
    IfNull,
    InsertSelect,
    Lit,
    SelectItem,
)
from repro.sqlgen.compiler import SqlPipeline
from repro.sqlgen.executor import DuckDbExecutor, duckdb_available
from dataclasses import replace


def _scenario_names():
    return sorted(bundled_problems())


def _program(name):
    return MappingSystem(bundled_problems()[name]).transformation


class TestRoundTripProofs:
    """Every statement of every scenario is PROVED (the tentpole claim)."""

    @pytest.mark.parametrize("name", _scenario_names())
    def test_all_statements_proved(self, name):
        report = check_program(_program(name), subject=name)
        assert report.verdicts, f"no statements for {name!r}"
        not_proved = [v for v in report.verdicts if v.verdict != PROVED]
        assert not not_proved, "\n".join(v.render() for v in not_proved)
        assert report.ok
        assert not report.findings

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_scenarios_all_proved(self, seed):
        """Weakly acyclic generated scenarios certify like the bundled ones."""
        from repro.scenarios.generator import generate_scenario

        scenario = generate_scenario(seed)
        program = MappingSystem(scenario.problem).transformation
        report = check_program(program, subject=scenario.name)
        assert report.verdicts
        assert report.ok, "\n".join(
            v.render() for v in report.verdicts if v.verdict != PROVED
        )

    def test_proved_verdicts_carry_both_witnesses(self):
        report = check_program(_program("figure-1"), subject="figure-1")
        for verdict in report.verdicts:
            assert "sql ⊆ rule" in verdict.witness
            assert "rule ⊆ sql" in verdict.witness

    def test_report_shapes(self):
        report = check_program(_program("figure-1"), subject="figure-1")
        data = report.to_dict()
        assert data["ok"] is True
        assert data["counts"][PROVED] == len(report.verdicts)
        assert all(v["sql"].startswith("INSERT INTO") for v in data["verdicts"])
        assert "sqlcheck:" in report.summary()


class TestPipelineDifferential:
    """The compiled pipeline agrees with the reference engine everywhere."""

    @pytest.mark.parametrize("name", _scenario_names())
    def test_pipeline_matches_reference(self, name):
        program = _program(name)
        executor = SqliteExecutor()
        checked = 0
        for label, instance in canonical_instances(program):
            reference = evaluate(program, instance)
            compiled_target = executor.run(program, instance)
            diff = diff_up_to_invented(reference.target, compiled_target)
            assert diff.empty, f"{name} / {label}:\n{diff.to_text()}"
            checked += 1
        assert checked > 0


class TestStructuralLints:
    """SQL002–SQL005 on hand-built trees the compiler never emits."""

    def _pipeline_with(self, program, node, **overrides):
        compiled = compile_program(program)
        first = next(s for s in compiled.statements if s.kind == "insert")
        statement = replace(first, node=node, **overrides)
        return SqlPipeline(program=program, statements=(statement,))

    def _first_insert(self, program):
        compiled = compile_program(program)
        return next(s for s in compiled.statements if s.kind == "insert")

    def test_sql002_raw_is_between_computed_expressions(self):
        program = _program("figure-1")
        first = self._first_insert(program)
        select = first.node.select
        bad_where = select.where + (
            Cmp("IS", Cast(Col("t0", "person"), "TEXT"), Lit("x")),
        )
        bad = InsertSelect(first.node.table, replace(select, where=bad_where))
        report = check_pipeline(self._pipeline_with(program, bad))
        assert "SQL002" in [f.code for f in report.findings]
        assert not report.ok

    def test_sql003_ambiguous_skolem_encoding(self):
        program = _program("figure-1")
        first = self._first_insert(program)
        select = first.node.select
        legacy = Concat(
            (
                Lit("\x02f("),
                IfNull(Cast(Col("t0", "person"), "TEXT"), Lit("null")),
                Lit(","),
                IfNull(Cast(Col("t0", "name"), "TEXT"), Lit("null")),
                Lit(")"),
            )
        )
        items = (SelectItem(legacy, select.items[0].alias),) + select.items[1:]
        bad = InsertSelect(first.node.table, replace(select, items=items))
        report = check_pipeline(self._pipeline_with(program, bad))
        assert "SQL003" in [f.code for f in report.findings]

    def test_canonical_encoding_is_not_flagged(self):
        # The compiler's own output must never trip SQL003.
        report = check_program(_program("figure-10"))
        assert "SQL003" not in [f.code for f in report.findings]

    def test_sql004_missing_dedup(self):
        program = _program("figure-1")
        first = self._first_insert(program)
        select = replace(first.node.select, distinct=False)
        bad = InsertSelect(first.node.table, select, dedup=None)
        report = check_pipeline(self._pipeline_with(program, bad))
        assert "SQL004" in [f.code for f in report.findings]

    def test_sql005_reordered_pipeline(self):
        # figure-1 negates OCtmp: moving its inserts after the reader makes
        # the pipeline order-dependent.
        program = _program("figure-1")
        compiled = compile_program(program)
        creates = tuple(s for s in compiled.statements if s.kind == "create")
        inserts = [s for s in compiled.statements if s.kind == "insert"]
        readers = [s for s in inserts if "OCtmp" in s.reads]
        writers = [s for s in inserts if s.writes == "OCtmp"]
        others = [s for s in inserts if s not in readers and s not in writers]
        reordered = SqlPipeline(
            program=program,
            statements=creates + tuple(readers + others + writers),
        )
        report = check_pipeline(reordered)
        assert "SQL005" in [f.code for f in report.findings]
        assert not report.ok

    def test_compiled_order_has_no_sql005(self):
        for name in ("figure-1", "figure-12", "publications"):
            report = check_program(_program(name))
            assert "SQL005" not in [f.code for f in report.findings], name


class TestUnknownVerdicts:
    def test_statement_without_rule_is_unknown(self):
        program = _program("figure-1")
        compiled = compile_program(program)
        first = next(s for s in compiled.statements if s.kind == "insert")
        orphan = replace(first, rule=None)
        report = check_pipeline(
            SqlPipeline(program=program, statements=(orphan,))
        )
        assert report.verdicts[0].verdict == UNKNOWN
        assert "SQL001" in [d.code for d in report.diagnostics()]

    def test_mismatched_rule_is_unknown(self):
        # Pair one rule's SQL with a different rule: no equivalence proof.
        program = _program("figure-1")
        compiled = compile_program(program)
        inserts = [s for s in compiled.statements if s.kind == "insert"]
        same_relation = [s for s in inserts if s.writes == "C2"]
        assert len(same_relation) >= 2
        crossed = replace(same_relation[0], rule=same_relation[1].rule)
        report = check_pipeline(
            SqlPipeline(program=program, statements=(crossed,))
        )
        assert report.verdicts[0].verdict == UNKNOWN
        assert not report.ok

    def test_unloweralbe_expression_reports_reason(self):
        program = _program("figure-1")
        first = next(
            s for s in compile_program(program).statements if s.kind == "insert"
        )
        select = first.node.select
        weird = Cast(Col("t0", select.items[0].expr.column), "INTEGER")
        items = (SelectItem(weird, select.items[0].alias),) + select.items[1:]
        bad = InsertSelect(first.node.table, replace(select, items=items))
        lowering = lower_statement(bad, program)
        assert lowering.query is None
        assert lowering.reason


class TestMappingSystemIntegration:
    def test_sql_report_is_cached(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        assert system.sql_report() is system.sql_report()

    def test_cache_invalidated_on_problem_mutation(self):
        problem = bundled_problems()["figure-1"]
        system = MappingSystem(problem)
        first = system.sql_report()
        # Re-adding an equivalent correspondence changes the fingerprint.
        existing = problem.correspondences[0]
        problem.correspondences.append(existing)
        try:
            assert system.sql_report() is not first
        finally:
            problem.correspondences.pop()

    def test_sql_pipeline_renders_both_dialects(self):
        from repro.sqlgen import DUCKDB, SQLITE

        system = MappingSystem(bundled_problems()["figure-1"])
        pipeline = system.sql_pipeline()
        sqlite_sql = "\n".join(pipeline.sql(SQLITE))
        duckdb_sql = "\n".join(pipeline.sql(DUCKDB))
        assert " IS " in sqlite_sql
        assert "IS NOT DISTINCT FROM" in duckdb_sql

    def test_metrics_family_emitted(self):
        system = MappingSystem(bundled_problems()["figure-1"], metrics=True)
        system.sql_report()
        snapshot = system.metrics_snapshot()
        families = {m["name"] for m in snapshot["metrics"]}
        assert "sqlcheck.statements" in families
        assert "sqlcheck.runs" in families


class TestCli:
    def test_sql_check_all_proved(self, capsys):
        from repro.cli import main

        exit_code = main(["sql", "--scenario", "figure-1", "--check"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "PROVED" in output
        assert "CREATE TABLE" in output

    def test_sql_json_dump(self, capsys):
        import json

        from repro.cli import main

        exit_code = main(["sql", "--scenario", "figure-1", "--json", "--check"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["check"]["ok"] is True
        assert payload["statements"]

    def test_lint_sql_clean(self, capsys):
        from repro.cli import main

        exit_code = main(["lint", "--sql", "--scenario", "figure-1"])
        assert exit_code == 0

    def test_sql_duckdb_dialect(self, capsys):
        from repro.cli import main

        exit_code = main(
            ["sql", "--scenario", "figure-1", "--dialect", "duckdb"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "IS NOT DISTINCT FROM" in output


class TestDuckDbGating:
    def test_constructor_gated(self):
        if duckdb_available():
            pytest.skip("duckdb installed: gating not observable")
        with pytest.raises(EvaluationError):
            DuckDbExecutor()

    @pytest.mark.skipif(not duckdb_available(), reason="duckdb not installed")
    def test_duckdb_matches_reference(self):
        program = _program("figure-1")
        for label, instance in canonical_instances(program):
            reference = evaluate(program, instance)
            target = DuckDbExecutor().run(program, instance)
            diff = diff_up_to_invented(reference.target, target)
            assert diff.empty, f"{label}:\n{diff.to_text()}"
