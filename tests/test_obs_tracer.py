"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    NOOP,
    RunReport,
    Span,
    Tracer,
    count,
    current_tracer,
    from_jsonl,
    report_records,
    span,
    to_chrome_trace,
    to_jsonl,
    use_tracer,
)
from repro.obs.schema import SchemaViolation, validate
from repro.obs.tracer import NOOP_SPAN


class TestTracer:
    def test_nesting(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer") as outer:
                with span("inner.a"):
                    pass
                with span("inner.b") as b:
                    with span("leaf"):
                        pass
        assert [s.name for s in tracer.spans] == ["outer"]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in b.children] == ["leaf"]
        assert [s.name for s in outer.walk()] == [
            "outer", "inner.a", "inner.b", "leaf",
        ]

    def test_sibling_top_level_spans(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("first"):
                pass
            with span("second"):
                pass
        assert [s.name for s in tracer.spans] == ["first", "second"]

    def test_counters_global_and_per_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            count("top")  # no open span: global only
            with span("outer") as outer:
                count("steps")
                with span("inner") as inner:
                    count("steps", 2)
        assert tracer.counters == {"top": 1, "steps": 3}
        assert outer.counters == {"steps": 1}
        assert inner.counters == {"steps": 2}
        assert outer.total_counters() == {"steps": 3}

    def test_timing_is_monotonic(self):
        clock = iter([1.0, 2.0, 5.0, 9.0]).__next__
        tracer = Tracer(clock=clock)
        with use_tracer(tracer):
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert outer.start == 1.0 and outer.end == 9.0
        assert outer.duration == 8.0
        assert inner.duration == 3.0

    def test_attributes_and_set(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("chase", relation="C2") as s:
                s.set(tableaux=2)
        assert tracer.spans[0].attributes == {"relation": "C2", "tableaux": 2}

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
            with span("after"):
                pass
        # The failing span was closed, so "after" is a sibling, not a child.
        assert [s.name for s in tracer.spans] == ["failing", "after"]
        assert tracer.spans[0].end is not None

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        assert current_tracer() is NOOP
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is NOOP


class TestNoopPath:
    def test_disabled_records_nothing(self):
        # No tracer installed: the module helpers hit the shared no-op.
        assert current_tracer() is NOOP
        with span("ignored", attr=1) as s:
            count("ignored.counter", 41)
            s.set(more=2)
        assert NOOP.spans == ()
        assert NOOP.counters == {}
        assert not NOOP.enabled

    def test_disabled_span_is_shared_singleton(self):
        # No allocation when tracing is off: always the same span object.
        assert span("a") is NOOP_SPAN
        assert span("b", x=1) is NOOP_SPAN


class TestRunReport:
    def _traced(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("stage.schema_mapping", algorithm="novel") as root:
                count("chase.steps", 5)
                with span("chase.source"):
                    count("chase.tableaux", 3)
        return tracer, root

    def test_from_span_totals(self):
        _, root = self._traced()
        report = RunReport.from_span(root, label="schema-mapping")
        assert report.label == "schema-mapping"
        assert report.counters == {"chase.steps": 5, "chase.tableaux": 3}
        assert len(report.spans) == 1
        assert report.spans[0]["children"][0]["name"] == "chase.source"

    def test_dict_round_trip(self):
        _, root = self._traced()
        report = RunReport.from_span(root, label="stage")
        clone = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.to_dict() == report.to_dict()

    def test_merged(self):
        _, root = self._traced()
        first = RunReport.from_span(root, label="one")
        second = RunReport(label="two", wall_time=1.0, counters={"chase.steps": 2})
        merged = first.merged(second, None)
        assert merged.label == "one+two"
        assert merged.counters["chase.steps"] == 7
        assert merged.wall_time == pytest.approx(first.wall_time + 1.0)

    def test_render(self):
        _, root = self._traced()
        text = RunReport.from_span(root, label="stage").render()
        assert "stage.schema_mapping" in text
        assert "chase.source" in text
        assert "chase.steps" in text
        assert "counters (totals):" in text

    def test_validates_against_checked_in_schema(self):
        import pathlib

        _, root = self._traced()
        report = RunReport.from_span(root, label="stage")
        schema_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "docs" / "run_report.schema.json"
        )
        schema = json.loads(schema_path.read_text())
        validate(report.to_dict(), schema)  # must not raise
        broken = report.to_dict()
        broken["counters"]["chase.steps"] = "five"
        with pytest.raises(SchemaViolation):
            validate(broken, schema)


class TestExport:
    def _report(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("root", kind="test") as root:
                count("a", 2)
                with span("child"):
                    count("b")
        return RunReport.from_span(root, label="export")

    def test_jsonl_round_trip(self):
        report = self._report()
        records = from_jsonl(to_jsonl(report))
        assert records == report_records(report)
        spans = [r for r in records if r["type"] == "span"]
        counters = [r for r in records if r["type"] == "counter"]
        assert [s["name"] for s in spans] == ["root", "child"]
        assert spans[0]["parent"] == -1 and spans[1]["parent"] == 0
        assert spans[1]["depth"] == 1
        assert {c["name"]: c["value"] for c in counters} == {"a": 2, "b": 1}

    def test_chrome_trace_structure(self):
        report = self._report()
        trace = to_chrome_trace(report)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert [e["name"] for e in spans] == ["root", "child"]
        assert spans[0]["ts"] == 0  # timestamps relative to the earliest span
        assert spans[1]["ts"] >= 0 and spans[1]["dur"] >= 0
        assert spans[0]["args"]["kind"] == "test"
        assert {e["name"] for e in counters} == {"a", "b"}
        json.dumps(trace)  # must be JSON-serializable as-is
