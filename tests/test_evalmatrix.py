"""The results-matrix eval runner: rows, gates, serialization, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.evalmatrix import (
    EvalMatrix,
    EvalRow,
    eval_scenario,
    parse_seed_range,
    run_eval,
)
from repro.cli import main
from repro.scenarios.generator import DEFAULT, GeneratorConfig
from repro.sqlgen.executor import duckdb_available


class TestEvalScenario:
    def test_row_shape_on_clean_seed(self):
        row = eval_scenario(0, duckdb=False)
        assert row.status == "ok"
        assert row.scenario == "gen-0" and row.seed == 0
        assert row.agreement is True and row.disagreements == []
        assert row.engines == ["reference", "batch", "sqlite"]
        assert row.certify and row.certify.get("REFUTED", 0) == 0
        assert row.refuted == 0 and row.unconfirmed_refuted == 0
        assert row.termination == "PROVED"
        assert row.sql_ok is True
        assert row.cost_bounded is True and row.cost_max_degree is not None
        assert row.flow_ok is True
        assert row.timings["seconds"] > 0
        for leg in row.engines:
            assert leg in row.timings

    def test_cyclic_config_reports_lint_error(self):
        row = eval_scenario(0, GeneratorConfig(weakly_acyclic=False), duckdb=False)
        assert row.status == "lint-error"
        assert "SCH010" in row.lint_codes
        assert row.agreement is None and row.certify is None

    def test_stable_dict_excludes_timings(self):
        row = eval_scenario(1, duckdb=False)
        stable = row.stable_dict()
        assert "timings" not in stable
        assert "timings" in row.to_dict()

    @pytest.mark.skipif(not duckdb_available(), reason="duckdb not installed")
    def test_duckdb_leg_populates_when_available(self):
        row = eval_scenario(0, duckdb=True)
        assert "duckdb" in row.engines
        assert row.agreement is True
        assert "duckdb" in row.timings


class TestEvalMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        return run_eval(range(4), duckdb=False)

    def test_summary_counts(self, matrix):
        summary = matrix.summary()
        assert summary["scenarios"] == 4
        assert summary["ok"] == 4 and summary["error"] == 0
        assert summary["agreeing"] == summary["evaluated"] == 4
        assert summary["refuted"] == 0 and summary["unconfirmed_refuted"] == 0
        assert summary["certify"].get("REFUTED", 0) == 0
        assert summary["sqlcheck"].get("UNKNOWN", 0) == 0

    def test_gate_passes_clean_sweep(self, matrix):
        assert matrix.gate() == []
        assert matrix.gate("error") == []
        assert matrix.gate("never") == []

    def test_gate_flags_bad_rows(self):
        bad = EvalRow(
            scenario="gen-9",
            seed=9,
            status="ok",
            agreement=False,
            disagreements=["sqlite"],
            refuted=2,
            unconfirmed_refuted=1,
            sql_ok=False,
            cost_bounded=False,
            flow_ok=False,
        )
        errored = EvalRow(scenario="gen-10", seed=10, status="error", error="boom")
        matrix = EvalMatrix(rows=[bad, errored])
        failures = matrix.gate()
        assert len(failures) == 6
        assert any("engines disagree (sqlite)" in f for f in failures)
        assert any("REFUTED without counterexample" in f for f in failures)
        assert len(matrix.gate("error")) == 7
        assert matrix.gate("never") == []

    def test_json_round_trip(self, matrix):
        document = json.loads(matrix.to_json())
        assert set(document) == {"meta", "results"}
        results = document["results"]
        assert results["summary"]["scenarios"] == 4
        assert len(results["rows"]) == 4
        assert results["config"] == DEFAULT.to_dict()
        lines = matrix.to_jsonl().splitlines()
        assert [json.loads(line)["seed"] for line in lines] == [0, 1, 2, 3]

    def test_render_table(self, matrix):
        text = matrix.render()
        assert "certify P/R/U" in text
        assert "4 scenario(s): 4 ok" in text


class TestParseSeedRange:
    def test_forms(self):
        assert parse_seed_range("0:4") == [0, 1, 2, 3]
        assert parse_seed_range("7") == [7]
        assert parse_seed_range("3,5,9") == [3, 5, 9]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            parse_seed_range("5:5")


class TestCliEval:
    def test_sweep_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "matrix.json"
        jsonl = tmp_path / "matrix.jsonl"
        assert (
            main(
                [
                    "eval",
                    "--seeds",
                    "0:3",
                    "--no-duckdb",
                    "--out",
                    str(out),
                    "--jsonl-out",
                    str(jsonl),
                ]
            )
            == 0
        )
        assert "3 scenario(s): 3 ok" in capsys.readouterr().out
        document = json.loads(out.read_text())
        assert document["results"]["summary"]["agreeing"] == 3
        assert len(jsonl.read_text().splitlines()) == 3

    def test_replay_prints_scenario(self, capsys):
        assert main(["eval", "--seed", "7", "--replay", "--no-duckdb"]) == 0
        out = capsys.readouterr().out
        assert "# scenario gen-7 (seed 7)" in out
        assert "source schema GENSRC7:" in out
        assert "# eval row" in out

    def test_cyclic_mode_is_lint_error_not_gate_failure(self, capsys):
        assert main(["eval", "--seeds", "0:2", "--cyclic", "--no-duckdb"]) == 0
        assert "2 lint-error" in capsys.readouterr().out

    def test_cyclic_mode_fails_error_gate(self, capsys):
        assert (
            main(
                ["eval", "--seeds", "0:2", "--cyclic", "--no-duckdb", "--fail-on", "error"]
            )
            == 1
        )
        assert "eval gate:" in capsys.readouterr().err

    def test_bad_seed_range_exits_2(self, capsys):
        assert main(["eval", "--seeds", "9:9"]) == 2
        assert "empty seed range" in capsys.readouterr().err

    def test_json_output(self, capsys):
        assert main(["eval", "--seed", "2", "--no-duckdb", "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["scenarios"] == 1
