"""Golden operator-tree snapshots for the batch runtime's planner.

The compiled plans of the paper's Figure 1 / Figure 12 / Figure 14 scenarios
and the appendix examples are pinned in ``tests/fixtures/plans.json``: any
change to the planner (join ordering, slot assignment, operator shapes) or
to query generation that moves an operator shows up as a reviewable fixture
diff.  Plans mention only slots, relations, positions, constants and Skolem
functors, so their rendering is deterministic across runs.

Regenerate after an intentional planner change with::

    REGEN_PLANS=1 PYTHONPATH=src python -m pytest tests/test_plan_snapshots.py -q
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.pipeline import MappingSystem
from repro.datalog.exec import plan_program
from repro.scenarios import bundled_problems

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "plans.json")

#: The pinned scenarios: the Figure 1 running example, the paper-body
#: variants with negation / nullable sources, and the appendix examples.
SCENARIOS = (
    "figure-1",
    "figure-12",
    "figure-14",
    "appendix-A.3",
    "appendix-A.7",
    "appendix-c4",
    "example-6-6",
)


def _render(name: str) -> str:
    problem = bundled_problems()[name]
    program = MappingSystem(problem).transformation
    return plan_program(program).render()


def _golden() -> dict[str, str]:
    with open(FIXTURE) as handle:
        return json.load(handle)


@pytest.fixture(scope="module", autouse=True)
def _regenerate_if_requested():
    if os.environ.get("REGEN_PLANS"):
        payload = {name: _render(name) for name in SCENARIOS}
        with open(FIXTURE, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    yield


def test_fixture_covers_the_pinned_scenarios():
    assert sorted(_golden()) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", SCENARIOS)
def test_plan_matches_fixture(name):
    assert _render(name) == _golden()[name], (
        f"operator tree drifted for {name!r}; if the change is intentional, "
        "regenerate with REGEN_PLANS=1"
    )


@pytest.mark.parametrize("name", SCENARIOS)
def test_plan_rendering_is_deterministic(name):
    assert _render(name) == _render(name)


def test_pinned_plans_cover_every_operator_kind():
    """The fixture exercises scans, joins, filters, antijoins and projects."""
    text = "\n".join(_golden().values())
    for keyword in ("scan ", "join ", "filter ", "antijoin ", "project "):
        assert keyword in text, keyword
