"""Soundness fuzzing for the constraint certifier.

Two directions, matching the certifier's two definite verdicts:

* **PROVED is safe**: for every bundled scenario (all of whose constraints
  the certifier proves), no fuzzed valid source instance can make either
  evaluation engine produce a target instance violating any constraint.  A
  single violation would be a counterexample to a claimed proof.
* **REFUTED is real**: every counterexample the certifier attaches to a
  refutation is a valid source instance whose transformation trips the
  refuted constraint on *both* engines.  (The certifier checks this itself
  before reporting — the test closes the loop from the outside, through the
  public API only.)

Instances come from the scenario generator's shared two-phase builder (via
``tests/strategies.py``): keys are unique by construction, foreign keys
reference existing rows (or draw null when the attribute is nullable),
nullable attributes may draw null — so every generated instance is valid by
construction, asserted, not assumed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.certify import PROVED, certify_program
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.model.validation import validate_instance
from repro.scenarios import bundled_problems

from .strategies import draw_valid_instance
from .test_certify import BROKEN_FIXTURES

SCENARIOS = sorted(bundled_problems())

_SYSTEMS: dict[str, MappingSystem] = {}


def system_for(name: str) -> MappingSystem:
    """One compiled-and-certified system per scenario, shared across examples."""
    if name not in _SYSTEMS:
        _SYSTEMS[name] = MappingSystem(bundled_problems()[name])
        _SYSTEMS[name].certify()
    return _SYSTEMS[name]


@pytest.mark.parametrize("name", SCENARIOS)
@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_proved_constraints_never_violated(name, data):
    """A PROVED verdict survives any valid source instance, on both engines."""
    system = system_for(name)
    report = system.certify()
    assert report.ok and all(v.verdict == PROVED for v in report.verdicts)

    source = draw_valid_instance(data.draw, system.problem.source_schema, rows=(1, 3))
    assert validate_instance(source).ok, "generator must produce valid input"

    program = system.compile()
    for run in (evaluate, evaluate_batch):
        target = run(program, source).target
        violations = validate_instance(target)
        assert violations.ok, (
            f"{name}/{run.__name__}: certified PROVED but violated — "
            f"{violations.summary()}"
        )


@pytest.mark.parametrize("kind", sorted(BROKEN_FIXTURES))
def test_refuted_counterexamples_reproduce(kind):
    """Every refutation's counterexample trips the constraint on both engines."""
    program = BROKEN_FIXTURES[kind]()
    report = certify_program(program, subject=f"broken-{kind}")
    refuted = report.refuted
    assert refuted, report.render()
    for verdict in refuted:
        source = verdict.counterexample
        assert source is not None
        assert validate_instance(source).ok
        for run in (evaluate, evaluate_batch):
            target = run(program, source).target
            violations = validate_instance(target)
            tripped = {
                "key": [v.relation for v in violations.key_violations],
                "not-null": [v.relation for v in violations.null_violations],
                "foreign-key": [
                    v.relation for v in violations.foreign_key_violations
                ],
            }[verdict.kind]
            assert verdict.relation in tripped, (kind, run.__name__)
