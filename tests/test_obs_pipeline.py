"""End-to-end observability: traced pipeline runs, stats() and cache safety."""

import json
import pathlib

import pytest

from repro.core.pipeline import MappingSystem
from repro.errors import HardKeyConflictError, ReproError
from repro.model.builder import SchemaBuilder
from repro.obs import NOOP, Tracer
from repro.obs.schema import validate
from repro.scenarios import cars

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "docs" / "run_report.schema.json"
)


@pytest.fixture
def traced_system():
    return MappingSystem(cars.figure1_problem(), trace=True)


class TestTracedPipeline:
    def test_stage_reports_attached(self, traced_system):
        mapping = traced_system.schema_mapping_result()
        queries = traced_system.query_result()
        evaluation = traced_system.transform_detailed(cars.cars3_source_instance())
        assert mapping.run_report is not None
        assert queries.run_report is not None
        assert evaluation.run_report is not None
        assert mapping.run_report.label == "schema-mapping"
        assert queries.run_report.label == "query-generation"
        assert evaluation.run_report.label == "evaluation"

    def test_cars3_counters_nonzero(self, traced_system):
        traced_system.transform(cars.cars3_source_instance())
        counters = traced_system.stats().counters
        # chase (§4)
        assert counters["chase.steps"] > 0
        assert counters["chase.tableaux"] > 0
        # pruning (§5): Example 5.2 prunes by poison, subsumption and the
        # non-null extension rule on this very scenario.
        assert counters["prune.poison"] > 0
        assert counters["prune.subsumption"] > 0
        assert counters["prune.nonnull-extension"] > 0
        assert counters["candidates.generated"] > counters["candidates.kept"] > 0
        # key management (§6): one soft conflict, resolved by negation.
        assert counters["conflicts.soft"] > 0
        assert counters["resolution.disabled-negations"] > 0
        # evaluation: per-stratum tuple counts.
        assert counters["eval.strata"] > 0
        assert counters["eval.tuples"] > 0
        assert counters["skolem.nulls"] > 0

    def test_stats_merges_all_stages(self, traced_system):
        traced_system.transform(cars.cars3_source_instance())
        report = traced_system.stats()
        assert report.label == "schema-mapping+query-generation+evaluation"
        names = [s["name"] for s in report.spans]
        assert names == [
            "stage.schema_mapping", "stage.query_generation", "stage.evaluate",
        ]

    def test_stats_without_transform(self, traced_system):
        report = traced_system.stats()
        assert report.label == "schema-mapping+query-generation"
        assert "eval.tuples" not in report.counters

    def test_per_stratum_spans(self, traced_system):
        evaluation = traced_system.transform_detailed(cars.cars3_source_instance())
        [stage] = evaluation.run_report.spans
        strata = [c for c in stage["children"] if c["name"] == "eval.stratum"]
        assert strata, "expected one span per stratum"
        for stratum in strata:
            assert "relation" in stratum["attributes"]
            assert stratum["attributes"]["tuples"] == stratum["counters"].get(
                "eval.tuples", 0
            )

    def test_fusion_counters_on_figure12(self):
        system = MappingSystem(cars.figure12_problem(), trace=True)
        system.transformation
        counters = system.stats().counters
        assert counters["resolution.fused"] > 0  # Example C.2 fuses o/d lines

    def test_implication_pruning_on_figure14(self):
        system = MappingSystem(cars.figure14_problem(), trace=True)
        system.schema_mapping
        assert system.stats().counters["prune.implication"] > 0  # Example C.3

    def test_functor_unification_on_example_6_7(self):
        from repro.scenarios.appendix_c import example_6_7_problem

        system = MappingSystem(example_6_7_problem(), trace=True)
        system.transformation
        assert system.stats().counters["resolution.unified-functors"] > 0

    def test_hard_conflict_counted_before_raise(self):
        from repro.core.pipeline import MappingProblem

        source = (
            SchemaBuilder("s")
            .relation("A", "c", "s", "v", key=["c", "s"])
            .relation("B", "c", "s", "v", key=["c", "s"])
            .build()
        )
        target = (
            SchemaBuilder("t").relation("T", "c", "s", "v", key=["c", "s"]).build()
        )
        problem = MappingProblem(source, target)
        for relation in ("A", "B"):
            problem.add_correspondence(f"{relation}.c", "T.c")
            problem.add_correspondence(f"{relation}.s", "T.s")
            problem.add_correspondence(f"{relation}.v", "T.v")
        system = MappingSystem(problem, trace=True)
        with pytest.raises(HardKeyConflictError):
            system.transformation
        assert system.tracer.counters.get("conflicts.hard", 0) > 0

    def test_report_validates_against_schema(self, traced_system):
        traced_system.transform(cars.cars3_source_instance())
        payload = json.loads(json.dumps(traced_system.stats().to_dict()))
        schema = json.loads(SCHEMA_PATH.read_text())
        validate(payload, schema)  # must not raise


class TestDisabledPath:
    def test_untraced_run_records_no_spans(self):
        sentinel = Tracer()  # a live tracer that is never installed
        system = MappingSystem(cars.figure1_problem())
        system.transform(cars.cars3_source_instance())
        assert system.tracer is None
        assert sentinel.spans == [] and sentinel.counters == {}
        assert NOOP.spans == () and NOOP.counters == {}
        assert system.schema_mapping_result().run_report is None
        assert system.query_result().run_report is None

    def test_stats_requires_trace(self):
        system = MappingSystem(cars.figure1_problem())
        with pytest.raises(ReproError, match="trace=True"):
            system.stats()


class TestCacheInvalidation:
    def test_mutating_problem_invalidates_caches(self):
        problem = cars.figure1_problem()
        system = MappingSystem(problem)
        stale_mapping = system.schema_mapping_result()
        stale_queries = system.query_result()
        problem.add_correspondence("P3.name", "P2.email", "extra")
        fresh_mapping = system.schema_mapping_result()
        assert fresh_mapping is not stale_mapping
        assert system.query_result() is not stale_queries
        # The recomputed mapping reflects the mutated problem, not the old one:
        # it matches what a brand-new system sees for the same problem.
        control = MappingSystem(problem)
        assert str(fresh_mapping.schema_mapping) == str(control.schema_mapping)

    def test_removal_also_detected(self):
        problem = cars.figure1_problem()
        system = MappingSystem(problem)
        stale = system.schema_mapping_result()
        problem.correspondences.pop()
        assert system.schema_mapping_result() is not stale

    def test_unchanged_problem_keeps_cache(self):
        system = MappingSystem(cars.figure1_problem())
        first = system.schema_mapping_result()
        assert system.schema_mapping_result() is first
        assert system.query_result() is system.query_result()
