"""Tests for soft key-conflict resolution (Examples 6.4, 6.7, C.2, C.4)."""

import pytest

from repro.core.conflicts import COPY, INVENT, NULL_KIND, term_kind
from repro.core.query_generation import rewrite_to_unitary
from repro.core.resolution import FunctorUnifier, resolve_key_conflicts
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.errors import HardKeyConflictError
from repro.logic.terms import NULL_TERM, SkolemTerm, Variable
from repro.scenarios import cars
from repro.scenarios.appendix_c import example_6_7_problem, example_c4_problem


def _resolve(problem):
    result = generate_schema_mapping(
        problem.source_schema, problem.target_schema, problem.correspondences
    )
    skolemized = skolemize_schema_mapping(
        list(result.schema_mapping), problem.target_schema
    )
    unitary = rewrite_to_unitary(skolemized)
    final, report = resolve_key_conflicts(
        unitary, problem.source_schema, problem.target_schema
    )
    return final, report


class TestExample64:
    """Example 6.4: the null-producing C2 mapping is disabled for owned cars."""

    def test_null_mapping_gets_negation(self, figure1_problem):
        final, report = _resolve(figure1_problem)
        c2_null = [
            m
            for m in final
            if m.consequent.relation == "C2" and m.consequent.terms[2] is NULL_TERM
        ]
        assert len(c2_null) == 1
        [negation] = c2_null[0].premise.negated
        # not { c | O3(c, p'), C3(c, m'), P3(p', n', e') }
        assert [a.relation for a in negation.atoms] == ["O3", "C3", "P3"]
        assert len(negation.correlated) == 1
        # correlated on the mapping's own key variable
        assert negation.correlated[0] is c2_null[0].consequent.terms[0]

    def test_preferred_mapping_unchanged(self, figure1_problem):
        final, report = _resolve(figure1_problem)
        c2_copy = [
            m
            for m in final
            if m.consequent.relation == "C2"
            and term_kind(m.consequent.terms[2]) == COPY
        ]
        assert len(c2_copy) == 1
        assert not c2_copy[0].premise.negated

    def test_no_fusion_for_one_sided_preference(self, figure1_problem):
        final, report = _resolve(figure1_problem)
        assert report.fused == []


class TestSiblingPropagation:
    """Example C.1: the P2a sibling of the disabled C2a mapping is disabled too."""

    def test_siblings_share_negation(self):
        final, report = _resolve(cars.figure10_problem())
        rewritten = [m for m in final if m.premise.negated]
        # Both unitary mappings of the C3 -> C2a, P2a original get the same
        # negation.
        assert len(rewritten) == 2
        origins = {m.origin for m in rewritten}
        assert len(origins) == 1
        signatures = {m.premise.negated[0].signature() for m in rewritten}
        assert len(signatures) == 1
        relations = {m.consequent.relation for m in rewritten}
        assert relations == {"C2a", "P2a"}


class TestExample67:
    """Example 6.7: Skolem unification and a fused mapping."""

    def test_functors_unified_and_propagated(self):
        final, report = _resolve(example_6_7_problem())
        x_terms = [
            m.consequent.terms[3]
            for m in final
            if m.consequent.relation == "T"
        ]
        functors = {t.functor for t in x_terms if isinstance(t, SkolemTerm)}
        assert len(functors) == 1  # all three rules use the same f_x
        assert report.functor_renaming  # a merge happened

    def test_three_final_mappings(self):
        final, report = _resolve(example_6_7_problem())
        assert len(final) == 3
        assert len(report.fused) == 1

    def test_fused_mapping_picks_best(self):
        final, report = _resolve(example_6_7_problem())
        [fused] = report.fused
        kinds = [term_kind(t) for t in fused.consequent.terms]
        assert kinds == [COPY, COPY, COPY, INVENT]  # k, a, b copied; x invented
        assert not fused.premise.negated  # nothing outside M is preferable

    def test_rewritten_originals_disabled(self):
        final, report = _resolve(example_6_7_problem())
        originals = [m for m in final if m not in report.fused]
        assert all(len(m.premise.negated) == 1 for m in originals)


class TestExampleC4:
    """Example C.4: three-way conflict, four fused mappings."""

    def test_fusion_count(self):
        final, report = _resolve(example_c4_problem())
        assert len(report.fused) == 4  # {1,2}, {1,3}, {2,3}, {1,2,3}
        assert len(final) == 3 + 4

    def test_rewritten_originals_have_two_negations(self):
        final, report = _resolve(example_c4_problem())
        originals = [m for m in final if m not in report.fused]
        assert all(len(m.premise.negated) == 2 for m in originals)

    def test_pairwise_fusions_have_one_negation(self):
        final, report = _resolve(example_c4_problem())
        pairwise = [m for m in report.fused if m.origin.count("+") == 1]
        triple = [m for m in report.fused if m.origin.count("+") == 2]
        assert len(pairwise) == 3 and len(triple) == 1
        assert all(len(m.premise.negated) == 1 for m in pairwise)
        assert not triple[0].premise.negated

    def test_triple_fusion_copies_everything(self):
        final, report = _resolve(example_c4_problem())
        [triple] = [m for m in report.fused if m.origin.count("+") == 2]
        kinds = [term_kind(t) for t in triple.consequent.terms]
        assert kinds == [COPY, COPY, COPY, COPY]

    def test_s1_s3_fusion_unifies_b_functors(self):
        final, report = _resolve(example_c4_problem())
        b_functors = set()
        for mapping in final:
            term = mapping.consequent.terms[2]
            if isinstance(term, SkolemTerm):
                b_functors.add(term.functor)
        assert len(b_functors) == 1  # unified and propagated (Example 6.7 policy)
        assert "+" in next(iter(b_functors))  # merged name mentions both origins


class TestExampleC2Resolution:
    def test_single_fusion_of_owner_and_driver(self):
        final, report = _resolve(cars.figure12_problem())
        assert len(report.fused) == 1
        [fused] = report.fused
        kinds = [term_kind(t) for t in fused.consequent.terms]
        assert kinds == [COPY, COPY, COPY, COPY]

    def test_null_mapping_disabled_twice(self):
        final, report = _resolve(cars.figure12_problem())
        null_mapping = [
            m
            for m in final
            if m.consequent.relation == "Cod"
            and m.consequent.terms[2] is NULL_TERM
            and m.consequent.terms[3] is NULL_TERM
        ]
        assert len(null_mapping) == 1
        assert len(null_mapping[0].premise.negated) == 2


class TestHardConflictError:
    def test_raised_during_resolution(self):
        from repro.core.pipeline import MappingProblem
        from repro.model.builder import SchemaBuilder

        source = (
            SchemaBuilder("src").relation("A", "k", "v").relation("B", "k", "v").build()
        )
        target = SchemaBuilder("tgt").relation("T", "k", "v").build()
        problem = MappingProblem(source, target)
        for relation in ("A", "B"):
            problem.add_correspondence(f"{relation}.k", "T.k")
            problem.add_correspondence(f"{relation}.v", "T.v")
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        skolemized = skolemize_schema_mapping(
            list(result.schema_mapping), problem.target_schema
        )
        with pytest.raises(HardKeyConflictError):
            resolve_key_conflicts(
                rewrite_to_unitary(skolemized),
                problem.source_schema,
                problem.target_schema,
            )


class TestFunctorUnifier:
    def test_merged_names(self):
        unifier = FunctorUnifier()
        unifier.unify("f_b@m1", "f_b@m3")
        renaming = unifier.renaming()
        assert renaming["f_b@m1"] == "f_b@m1+m3"
        assert renaming["f_b@m3"] == "f_b@m1+m3"

    def test_transitive_merge(self):
        unifier = FunctorUnifier()
        unifier.unify("f_x@m1", "f_x@m2")
        unifier.unify("f_x@m2", "f_x@m3")
        renaming = unifier.renaming()
        assert renaming["f_x@m1"] == "f_x@m1+m2+m3"

    def test_untouched_functors_not_renamed(self):
        unifier = FunctorUnifier()
        unifier.unify("f_a@m1", "f_a@m2")
        renaming = unifier.renaming()
        assert "f_b@m9" not in renaming
