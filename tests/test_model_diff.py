"""Tests for instance diffing."""

import pytest

from repro.errors import InstanceError
from repro.model.diff import diff_instances
from repro.model.instance import instance_from_dict
from repro.model.values import NULL


def test_equal_instances(cars3_instance):
    diff = diff_instances(cars3_instance, cars3_instance.copy())
    assert diff.empty
    assert len(diff) == 0
    assert diff.to_text() == "(instances are equal)"


def test_asymmetric_difference(cars3):
    left = instance_from_dict(cars3, {"C3": [("c1", "Ford"), ("c2", "Opel")]})
    right = instance_from_dict(cars3, {"C3": [("c2", "Opel"), ("c3", "Fiat")]})
    diff = diff_instances(left, right)
    assert diff.changed_relations() == ["C3"]
    assert diff.relations["C3"].only_left == [("c1", "Ford")]
    assert diff.relations["C3"].only_right == [("c3", "Fiat")]
    assert len(diff) == 2


def test_text_rendering(cars2):
    left = instance_from_dict(cars2, {"C2": [("c1", "Ford", NULL)]})
    right = instance_from_dict(cars2, {"C2": [("c1", "Ford", "p1")]})
    text = diff_instances(left, right).to_text()
    assert "@@ C2 @@" in text
    assert "- (c1, Ford, null)" in text
    assert "+ (c1, Ford, p1)" in text


def test_schema_mismatch_rejected(cars3, cars2):
    from repro.model.instance import Instance

    with pytest.raises(InstanceError):
        diff_instances(Instance(cars3), Instance(cars2))


def test_diff_localizes_pipeline_difference(figure1_problem, cars3_instance):
    from repro.core.pipeline import MappingSystem
    from repro.core.schema_mapping import BASIC

    basic = MappingSystem(figure1_problem, algorithm=BASIC).transform(cars3_instance)
    novel = MappingSystem(figure1_problem).transform(cars3_instance)
    diff = diff_instances(novel, basic)
    assert set(diff.changed_relations()) == {"P2", "C2"}
    # The novel output's only exclusive row is the null-owner car.
    assert diff.relations["C2"].only_left == [("c86", "Ford", NULL)]
