"""Tests for the FK dependency graph and weak acyclicity (paper section 3.1)."""

import pytest

from repro.errors import WeakAcyclicityError
from repro.model.builder import SchemaBuilder
from repro.model.graph import (
    build_dependency_graph,
    chase_order,
    check_weak_acyclicity,
    find_special_cycle,
    is_weakly_acyclic,
)


def test_dependency_graph_structure(cars3):
    graph = build_dependency_graph(cars3)
    assert ("O3", "car") in graph.nodes
    # Ordinary edge O3.car -> C3.car, special edge O3.car -> C3.model.
    assert (("O3", "car"), ("C3", "car")) in graph.ordinary_edges
    assert (("O3", "car"), ("C3", "model")) in graph.special_edges
    # Two foreign keys, each to a 3/2-attribute relation.
    assert len(graph.ordinary_edges) == 2
    assert len(graph.special_edges) == 1 + 2  # C3 has 1 other attr, P3 has 2


def test_paper_schemas_are_weakly_acyclic(cars3, cars2, cars2a):
    for schema in (cars3, cars2, cars2a):
        assert is_weakly_acyclic(schema)


def test_self_referencing_fk_is_rejected():
    # employee -> manager: the classic non-terminating chase example.
    schema = (
        SchemaBuilder("emp")
        .relation("E", "id", "name", "manager")
        .foreign_key("E", "manager", "E")
        .build(validate=False)
    )
    assert not is_weakly_acyclic(schema)
    cycle = find_special_cycle(schema)
    assert cycle is not None
    with pytest.raises(WeakAcyclicityError):
        check_weak_acyclicity(schema)


def test_mutual_fks_are_rejected():
    schema = (
        SchemaBuilder("mutual")
        .relation("A", "k", "b")
        .relation("B", "k", "a")
        .foreign_key("A", "b", "B")
        .foreign_key("B", "a", "A")
        .build(validate=False)
    )
    assert not is_weakly_acyclic(schema)


def test_key_to_key_cycle_is_weakly_acyclic():
    # FKs between key attributes only: cyclic, but no special edges on the
    # cycle — weakly acyclic per the definition.
    schema = (
        SchemaBuilder("keycycle")
        .relation("A", "k")
        .relation("B", "k")
        .foreign_key("A", "k", "B")
        .foreign_key("B", "k", "A")
        .build(validate=False)
    )
    assert is_weakly_acyclic(schema)


def test_diamond_is_weakly_acyclic():
    schema = (
        SchemaBuilder("diamond")
        .relation("Top", "k", "l", "r")
        .relation("L", "k", "d")
        .relation("R", "k", "d")
        .relation("Bottom", "k", "v")
        .foreign_key("Top", "l", "L")
        .foreign_key("Top", "r", "R")
        .foreign_key("L", "d", "Bottom")
        .foreign_key("R", "d", "Bottom")
        .build()
    )
    assert is_weakly_acyclic(schema)


def test_chase_order_puts_targets_first(cars3):
    order = chase_order(cars3)
    assert order.index("C3") < order.index("O3")
    assert order.index("P3") < order.index("O3")
    assert sorted(order) == sorted(cars3.relation_names())


def test_builder_validation_catches_cycle():
    builder = (
        SchemaBuilder("bad")
        .relation("E", "id", "manager")
        .foreign_key("E", "manager", "E")
    )
    with pytest.raises(WeakAcyclicityError):
        builder.build()
