"""Shared fixtures: the paper's schemas and instances."""

from __future__ import annotations

import pytest

from repro.scenarios import cars


@pytest.fixture
def cars3():
    return cars.cars3_schema()


@pytest.fixture
def cars2():
    return cars.cars2_schema()


@pytest.fixture
def cars2a():
    return cars.cars2a_schema()


@pytest.fixture
def figure1_problem():
    return cars.figure1_problem()


@pytest.fixture
def cars3_instance():
    return cars.cars3_source_instance()
