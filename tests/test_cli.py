"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import main

PROBLEM_TEXT = """
source schema CARS3:
  relation P3 (person key, name, email)
  relation C3 (car key, model)
  relation O3 (car key -> C3, person -> P3)
target schema CARS2:
  relation P2 (person key, name, email)
  relation C2 (car key, model, person? -> P2)
correspondences:
  P3.person -> P2.person
  P3.name -> P2.name
  P3.email -> P2.email
  C3.car -> C2.car
  C3.model -> C2.model
  O3.car -> C2.car
  O3.person -> C2.person
"""

INSTANCE_TEXT = """
P3: (p21, John, j@x), (p22, MJ, mj@x)
C3: (c85, Ferrari), (c86, Ford)
O3: (c85, p22)
"""


@pytest.fixture
def problem_file(tmp_path):
    path = tmp_path / "problem.txt"
    path.write_text(PROBLEM_TEXT)
    return str(path)


@pytest.fixture
def instance_file(tmp_path):
    path = tmp_path / "instance.txt"
    path.write_text(INSTANCE_TEXT)
    return str(path)


class TestCompile:
    def test_compile_datalog(self, problem_file, capsys):
        assert main(["compile", problem_file]) == 0
        out = capsys.readouterr().out
        assert "schema mapping" in out
        assert "OCtmp" in out
        assert "<-" in out

    def test_compile_basic(self, problem_file, capsys):
        assert main(["compile", problem_file, "--algorithm", "basic"]) == 0
        out = capsys.readouterr().out
        assert "OCtmp" not in out  # no negation in the baseline

    def test_compile_sql(self, problem_file, capsys):
        assert main(["compile", problem_file, "--sql"]) == 0
        out = capsys.readouterr().out
        assert "INSERT INTO" in out
        assert "NOT EXISTS" in out

    def test_compile_long_names(self, problem_file, capsys):
        assert main(["compile", problem_file, "--algorithm", "basic",
                     "--long-names"]) == 0
        assert "f_person@" in capsys.readouterr().out


class TestRun:
    def test_run_datalog(self, problem_file, instance_file, capsys):
        assert main(["run", problem_file, instance_file]) == 0
        out = capsys.readouterr().out
        assert "c86" in out and "null" in out

    def test_run_sqlite_enforced(self, problem_file, instance_file, capsys):
        assert main([
            "run", problem_file, instance_file,
            "--engine", "sqlite", "--enforce", "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "satisfies all constraints" in out

    def test_run_validate_reports_basic_violations(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file,
            "--algorithm", "basic", "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "key violation" in out

    def test_run_fail_on_violation_exits_nonzero(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file,
            "--algorithm", "basic", "--fail-on-violation",
        ]) == 1
        out = capsys.readouterr().out
        # Violations render as located INS* diagnostics before the exit.
        assert "INS002" in out and "error" in out

    def test_run_fail_on_violation_clean_exits_zero(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file, "--fail-on-violation",
        ]) == 0
        out = capsys.readouterr().out
        assert "satisfies all constraints" in out


class TestExplain:
    def test_explain_output(self, problem_file, capsys):
        assert main(["explain", problem_file]) == 0
        out = capsys.readouterr().out
        assert "logical relations" in out
        assert "prune log" in out
        assert "key conflicts" in out
        assert "subsumption" in out


class TestMatch:
    def test_match_schemas(self, tmp_path, capsys):
        source = tmp_path / "src.txt"
        source.write_text(
            "relation P3 (person key, name, email)\n"
            "relation C3 (car key, model)\n"
        )
        target = tmp_path / "tgt.txt"
        target.write_text("relation P2 (person key, name, email)\n")
        assert main(["match", str(source), str(target)]) == 0
        out = capsys.readouterr().out
        assert "P3.person -> P2.person" in out
        assert "correspondences:" in out


class TestQuery:
    def test_query_command(self, problem_file, instance_file, capsys):
        assert main([
            "query", problem_file, instance_file,
            "(c, n) <- C2(c, m, p), P2(p, n, e)",
        ]) == 0
        out = capsys.readouterr().out
        assert "(c85, MJ)" in out
        assert "1 answer(s)" in out

    def test_certain_flag_drops_invented(self, problem_file, instance_file, capsys):
        assert main([
            "query", problem_file, instance_file,
            "--algorithm", "basic", "--certain",
            "(n) <- P2(p, n, e)",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 answer(s) (certain)" in out

    def test_bad_query_reports_error(self, problem_file, instance_file, capsys):
        assert main(["query", problem_file, instance_file, "nonsense"]) == 1
        assert "error" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/problem.txt"]) == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("this is not a problem file")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestJsonProblems:
    def test_compile_json_problem(self, tmp_path, capsys):
        from repro.dsl.jsonio import problem_to_dict
        from repro.dsl.parser import parse_problem

        problem = parse_problem(PROBLEM_TEXT)
        path = tmp_path / "problem.json"
        path.write_text(json.dumps(problem_to_dict(problem)))
        assert main(["compile", str(path)]) == 0
        assert "OCtmp" in capsys.readouterr().out


class TestMinimize:
    def test_minimize_scenario_removes_redundant_rule(self, capsys):
        assert main(["minimize", "--scenario", "figure-10"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 rule(s)" in out
        assert "SEM001" in out and "witness" in out
        assert "SEM002" in out  # the matching unitary-mapping finding
        assert "# minimized transformation" in out

    def test_minimize_problem_file(self, problem_file, capsys):
        assert main(["minimize", problem_file]) == 0
        out = capsys.readouterr().out
        assert "semantic minimization" in out

    def test_minimize_syntactic_first_is_already_minimal(self, capsys):
        assert main(["minimize", "--scenario", "figure-10",
                     "--syntactic-first"]) == 0
        out = capsys.readouterr().out
        assert "no removable rules" in out

    def test_minimize_unknown_scenario(self, capsys):
        assert main(["minimize", "--scenario", "no-such-figure"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_minimize_needs_a_problem(self, capsys):
        assert main(["minimize"]) == 2
        assert "problem file or --scenario" in capsys.readouterr().err


class TestWhyPruned:
    def test_subsumption_witnesses(self, problem_file, capsys):
        assert main(["explain", problem_file, "--why-pruned", "S3"]) == 0
        out = capsys.readouterr().out
        assert "rule:   subsumption" in out
        assert "containment witnesses" in out
        assert "source side: {" in out and "target side: {" in out

    def test_nonnull_extension_is_syntactic_only(self, problem_file, capsys):
        assert main(["explain", problem_file, "--why-pruned", "S6"]) == 0
        out = capsys.readouterr().out
        assert "rule:   nonnull-extension" in out
        assert "syntactic only" in out

    def test_poison_record_has_no_subsumer(self, problem_file, capsys):
        assert main(["explain", problem_file, "--why-pruned", "S8"]) == 0
        out = capsys.readouterr().out
        assert "no subsuming candidate" in out

    def test_unknown_candidate_lists_pruned_names(self, problem_file, capsys):
        assert main(["explain", problem_file, "--why-pruned", "S99"]) == 2
        err = capsys.readouterr().err
        assert "no pruned candidate named 'S99'" in err
        assert "S3" in err


class TestSemanticLint:
    def test_lint_semantic_flags_redundancy(self, problem_file, capsys):
        assert main(["lint", problem_file, "--semantic"]) == 0
        out = capsys.readouterr().out
        assert "SEM002" in out
        assert "warning" in out

    def test_lint_verify_optimizations_is_clean(self, problem_file, capsys):
        assert main(["lint", problem_file, "--verify-optimizations"]) == 0
        out = capsys.readouterr().out
        assert "SEM003" not in out and "SEM004" not in out

    def test_semantic_sarif_carries_witnesses(self, problem_file, tmp_path):
        sarif_path = tmp_path / "sem.sarif"
        assert main(["lint", problem_file, "--semantic",
                     "--sarif-out", str(sarif_path)]) == 0
        log = json.loads(sarif_path.read_text())
        results = log["runs"][0]["results"]
        semantic = [r for r in results if r["ruleId"].startswith("SEM")]
        assert semantic
        assert any("witness" in r.get("properties", {}) for r in semantic)

    def test_verify_optimizations_pipeline_flag(self, problem_file, capsys):
        assert main(["compile", problem_file, "--verify-optimizations"]) == 0
        assert "<-" in capsys.readouterr().out

    def test_semantic_pruning_pipeline_flag(self, problem_file, capsys):
        assert main(["compile", problem_file, "--semantic-pruning"]) == 0
        assert "<-" in capsys.readouterr().out


UNCOVERED_TEXT = """
source schema S:
  relation R (a key)
target schema T:
  relation P (a key, b)
correspondences:
  R.a -> P.a
"""


class TestFlow:
    @pytest.fixture
    def uncovered_file(self, tmp_path):
        path = tmp_path / "uncovered.txt"
        path.write_text(UNCOVERED_TEXT)
        return str(path)

    def test_flow_dump(self, problem_file, capsys):
        assert main(["flow", problem_file]) == 0
        out = capsys.readouterr().out
        assert "flow analysis" in out
        assert "relation C2" in out
        assert "null=" in out and "origins=" in out
        assert "functionality (Algorithm 4, static):" in out

    def test_flow_scenario(self, capsys):
        assert main(["flow", "--scenario", "figure-1"]) == 0
        out = capsys.readouterr().out
        assert "flow fixpoint over" in out
        assert "OCtmp" in out  # intermediates are dumped too

    def test_flow_scenario_with_findings(self, capsys):
        assert main(["flow", "--scenario", "appendix-A.3"]) == 0
        out = capsys.readouterr().out
        assert "diagnostics:" in out
        assert "FLW002" in out

    def test_flow_json_shape(self, problem_file, capsys):
        assert main(["flow", problem_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "problem", "algorithm", "states", "stats",
            "functionality", "diagnostics",
        }
        assert set(payload["states"]) == {
            "nullability", "provenance", "keyorigin"
        }
        for stats in payload["stats"].values():
            assert stats["iterations"] == stats["relations"]
        assert all(entry["confirmed"] for entry in payload["functionality"])

    def test_flow_basic_algorithm(self, problem_file, capsys):
        assert main(["flow", problem_file, "--algorithm", "basic"]) == 0
        assert "OCtmp" not in capsys.readouterr().out

    def test_flow_needs_a_problem(self, capsys):
        assert main(["flow"]) == 2

    def test_flow_unknown_scenario(self, capsys):
        assert main(["flow", "--scenario", "no-such-scenario"]) == 2

    def test_lint_flow_reports_flw(self, uncovered_file, capsys):
        assert main(["lint", uncovered_file, "--flow"]) == 0
        out = capsys.readouterr().out
        assert "FLW002" in out
        assert "P.b" in out

    def test_lint_without_flow_has_no_flw(self, uncovered_file, capsys):
        assert main(["lint", uncovered_file]) == 0
        assert "FLW" not in capsys.readouterr().out

    def test_lint_flow_clean_problem(self, problem_file, capsys):
        assert main(["lint", problem_file, "--flow"]) == 0
        assert "FLW" not in capsys.readouterr().out

    def test_lint_flow_sarif(self, uncovered_file, tmp_path):
        sarif_path = tmp_path / "flow.sarif"
        assert main(["lint", uncovered_file, "--flow",
                     "--sarif-out", str(sarif_path)]) == 0
        log = json.loads(sarif_path.read_text())
        run = log["runs"][0]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"FLW001", "FLW002", "FLW003"} <= rule_ids
        flw = [r for r in run["results"] if r["ruleId"] == "FLW002"]
        assert flw and flw[0]["level"] == "warning"
        region = flw[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 5  # the declaration line of P.b


class TestTelemetry:
    def test_compile_trace_prints_run_report(self, problem_file, capsys):
        assert main(["compile", problem_file, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "# run report" in out
        assert "stage.schema_mapping" in out
        assert "stage.query_generation" in out
        assert "chase.steps" in out
        assert "prune.subsumption" in out

    def test_run_profile_prints_timings(self, problem_file, instance_file, capsys):
        assert main(["run", problem_file, instance_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "# profile" in out
        assert "stage.evaluate" in out
        assert "eval.tuples" in out
        assert "ms total" in out

    def test_trace_out_writes_schema_valid_json(self, problem_file, tmp_path,
                                                capsys):
        from repro.obs.schema import main as validate_main

        report_path = tmp_path / "report.json"
        schema_path = (pathlib.Path(__file__).resolve().parent.parent
                       / "docs" / "run_report.schema.json")
        assert main(["compile", problem_file, "--trace-out",
                     str(report_path)]) == 0
        payload = json.loads(report_path.read_text())
        assert payload["counters"]["chase.steps"] > 0
        assert validate_main([str(report_path), str(schema_path)]) == 0
        assert "conforms" in capsys.readouterr().out

    def test_trace_chrome_writes_trace_events(self, problem_file, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main(["compile", problem_file, "--trace-chrome",
                     str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert "stage.schema_mapping" in names
        assert "chase.steps" in names  # counter events ride along

    def test_explain_includes_telemetry_section(self, problem_file, capsys):
        assert main(["explain", problem_file]) == 0
        out = capsys.readouterr().out
        assert "--- telemetry ---" in out
        assert "counters (totals):" in out

    def test_no_flags_no_telemetry(self, problem_file, capsys):
        assert main(["compile", problem_file]) == 0
        out = capsys.readouterr().out
        assert "# run report" not in out
        assert "counters" not in out


class TestEngineFlag:
    def test_run_batch_engine(self, problem_file, instance_file, capsys):
        assert main([
            "run", problem_file, instance_file, "--engine", "batch",
        ]) == 0
        out = capsys.readouterr().out
        assert "c86" in out and "null" in out

    def test_run_batch_matches_reference(self, problem_file, instance_file, capsys):
        assert main(["run", problem_file, instance_file]) == 0
        reference = capsys.readouterr().out
        assert main([
            "run", problem_file, instance_file, "--engine", "batch",
        ]) == 0
        assert capsys.readouterr().out == reference

    def test_workers_requires_batch_engine(self, problem_file, instance_file, capsys):
        assert main([
            "run", problem_file, instance_file, "--workers", "2",
        ]) == 2
        assert "--workers" in capsys.readouterr().err


class TestPlanCommand:
    def test_plan_problem_file(self, problem_file, capsys):
        assert main(["plan", problem_file]) == 0
        out = capsys.readouterr().out
        assert "scan " in out
        assert "project " in out

    def test_plan_scenario(self, capsys):
        assert main(["plan", "--scenario", "figure-1"]) == 0
        out = capsys.readouterr().out
        assert "join C3 on" in out
        assert "antijoin OCtmp" in out

    def test_plan_json_shape(self, problem_file, capsys):
        assert main(["plan", problem_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strata"]
        operators = [
            op
            for stratum in payload["strata"]
            for rule in stratum["rules"]
            for op in rule["operators"]
        ]
        assert any(op.startswith("scan ") for op in operators)
        assert any(op.startswith("project ") for op in operators)


class TestExplainAnalyze:
    def test_run_explain_analyze_prints_operator_tree(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file,
            "--engine", "batch", "--explain-analyze",
        ]) == 0
        out = capsys.readouterr().out
        assert "# explain analyze" in out
        assert "explain analyze (batch engine)" in out
        assert "source rows ->" in out
        assert "stratum 0" in out
        assert "rows_in=" in out and "rows_out=" in out
        assert "scan " in out and "project " in out

    def test_run_explain_analyze_reference_engine(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file,
            "--engine", "reference", "--explain-analyze",
        ]) == 0
        out = capsys.readouterr().out
        assert "explain analyze (reference engine)" in out
        assert "(no operator pipeline: reference engine)" in out

    def test_explain_analyze_rejects_sqlite(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "run", problem_file, instance_file,
            "--engine", "sqlite", "--explain-analyze",
        ]) == 2
        assert "--explain-analyze" in capsys.readouterr().err

    def test_analyze_out_writes_profile_json(
        self, problem_file, instance_file, tmp_path, capsys
    ):
        out_path = tmp_path / "analyze.json"
        assert main([
            "run", problem_file, instance_file,
            "--engine", "batch", "--analyze-out", str(out_path),
        ]) == 0
        # --analyze-out alone triggers collection but not the text dump
        assert "# explain analyze" not in capsys.readouterr().out
        payload = json.loads(out_path.read_text())
        assert payload["engine"] == "batch"
        assert payload["strata"]
        kinds = {
            op["kind"]
            for stratum in payload["strata"]
            for rule in stratum["rules"]
            for op in rule["operators"]
        }
        assert {"scan", "project"} <= kinds

    def test_plan_analyze_renders_annotated_tree(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "plan", problem_file, "--analyze", "--instance", instance_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "batch execution plan, analyzed" in out
        assert "rows_in=" in out

    def test_plan_analyze_requires_instance(self, problem_file, capsys):
        assert main(["plan", problem_file, "--analyze"]) == 2
        assert "--instance" in capsys.readouterr().err

    def test_plan_analyze_json(self, problem_file, instance_file, capsys):
        assert main([
            "plan", problem_file, "--analyze",
            "--instance", instance_file, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["analyze"]["engine"] == "batch"
        assert payload["analyze"]["strata"]


class TestMetricsExport:
    def test_run_metrics_out_is_schema_valid(
        self, problem_file, instance_file, tmp_path
    ):
        from repro.obs.schema import validate

        out_path = tmp_path / "metrics.json"
        assert main([
            "run", problem_file, instance_file,
            "--engine", "batch", "--metrics-out", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        schema = json.loads(
            (pathlib.Path(__file__).resolve().parent.parent
             / "docs" / "metrics.schema.json").read_text()
        )
        validate(payload, schema)  # must not raise
        names = {family["name"] for family in payload["metrics"]}
        assert "eval.rows" in names
        assert "exec.batches" in names
        assert "eval.run.seconds" in names

    def test_run_openmetrics_out(self, problem_file, instance_file, tmp_path):
        out_path = tmp_path / "metrics.txt"
        assert main([
            "run", problem_file, instance_file,
            "--engine", "batch", "--openmetrics-out", str(out_path),
        ]) == 0
        text = out_path.read_text()
        assert text.endswith("# EOF\n")
        assert "# TYPE eval_rows counter" in text
        assert 'eval_rows_total{engine="batch",kind="target"}' in text


class TestExplainWithInstance:
    def test_explain_instance_shows_batch_counters(
        self, problem_file, instance_file, capsys
    ):
        """Regression: explain omitted the batch engine's counters because
        nothing was evaluated — --instance runs the engine first."""
        assert main([
            "explain", problem_file, "--instance", instance_file,
        ]) == 0
        out = capsys.readouterr().out
        assert "--- telemetry ---" in out
        assert "eval.batches" in out
        assert "eval.index_reuse" in out

    def test_explain_reference_engine_instance(
        self, problem_file, instance_file, capsys
    ):
        assert main([
            "explain", problem_file, "--instance", instance_file,
            "--engine", "reference",
        ]) == 0
        out = capsys.readouterr().out
        assert "eval.tuples" in out
        assert "eval.batches" not in out  # no batching in the interpreter

    def test_explain_without_instance_has_no_eval_counters(
        self, problem_file, capsys
    ):
        assert main(["explain", problem_file]) == 0
        assert "eval.batches" not in capsys.readouterr().out
