"""Tests for JSON serialization and the explain/report renderers."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.dsl.jsonio import (
    dump_problem,
    program_from_dict,
    instance_from_dict_json,
    instance_to_dict,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    program_to_dict,
    schema_from_dict,
    schema_to_dict,
)
from repro.dsl.report import explain, render_conflict_report, render_generation_report
from repro.errors import ParseError
from repro.model.values import NULL, LabeledNull
from repro.scenarios import cars


class TestSchemaJson:
    def test_roundtrip(self, cars2):
        restored = schema_from_dict(schema_to_dict(cars2))
        assert restored.relation("C2").is_nullable("person")
        assert restored.relation("C2").key == ("car",)
        assert restored.foreign_key_from("C2", "person").referenced == "P2"
        assert restored.relation_names() == cars2.relation_names()

    def test_composite_key_roundtrip(self):
        from repro.model.builder import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .relation("E", "c", "s", "g", key=["c", "s"])
            .build()
        )
        restored = schema_from_dict(schema_to_dict(schema))
        assert restored.relation("E").key == ("c", "s")

    def test_malformed_rejected(self):
        with pytest.raises(ParseError):
            schema_from_dict({"relations": [{"bogus": True}]})


class TestProblemJson:
    def test_roundtrip_preserves_pipeline_output(self, cars3_instance):
        problem = cars.figure4_ra_problem()  # includes an r-a correspondence
        restored = problem_from_dict(problem_to_dict(problem))
        assert len(restored.correspondences) == 3
        assert not restored.correspondences[2].source.is_plain
        original_output = MappingSystem(problem).transform(cars3_instance)
        restored_output = MappingSystem(restored).transform(cars3_instance)
        assert original_output == restored_output

    def test_file_roundtrip(self, tmp_path, cars3_instance):
        problem = cars.figure1_problem()
        path = tmp_path / "problem.json"
        dump_problem(problem, str(path))
        restored = load_problem(str(path))
        assert MappingSystem(restored).transform(cars3_instance) == MappingSystem(
            problem
        ).transform(cars3_instance)

    def test_invalid_correspondence_rejected(self):
        problem = cars.figure1_problem()
        data = problem_to_dict(problem)
        data["correspondences"][0]["source"] = [["P3", "ghost"]]
        with pytest.raises(Exception):
            problem_from_dict(data)


class TestInstanceJson:
    def test_roundtrip_with_special_values(self, cars2):
        from repro.model.instance import Instance

        instance = Instance(cars2)
        invented = LabeledNull("f_p", ("c1", LabeledNull("g", ())))
        instance.add("C2", ("c1", "Ford", NULL))
        instance.add("C2", ("c2", "Opel", invented))
        restored = instance_from_dict_json(cars2, instance_to_dict(instance))
        assert restored == instance

    def test_json_serializable(self, cars3_instance):
        import json

        text = json.dumps(instance_to_dict(cars3_instance))
        assert "c85" in text


class TestProgramJson:
    def test_structure(self, figure1_problem):
        import json

        program = MappingSystem(figure1_problem).transformation
        data = program_to_dict(program)
        json.dumps(data)  # serializable
        assert data["intermediates"] == {"OCtmp": 1}
        assert len(data["rules"]) == 4
        negated_rules = [r for r in data["rules"] if r["negated"]]
        assert len(negated_rules) == 1
        head_terms = negated_rules[0]["head"]["terms"]
        assert head_terms[2] == {"null": True}

    def test_program_roundtrip_evaluates_identically(self, figure1_problem, cars3_instance):
        from repro.datalog import evaluate

        system = MappingSystem(figure1_problem)
        program = system.transformation
        restored = program_from_dict(
            program_to_dict(program),
            figure1_problem.source_schema,
            figure1_problem.target_schema,
        )
        restored.validate()
        assert evaluate(restored, cars3_instance).target == system.transform(
            cars3_instance
        )

    def test_program_roundtrip_with_filters(self):
        from repro.datalog import evaluate
        from repro.scenarios.publications import digest_problem, pubs_source_instance

        problem = digest_problem()
        system = MappingSystem(problem)
        restored = program_from_dict(
            program_to_dict(system.transformation),
            problem.source_schema,
            problem.target_schema,
        )
        source = pubs_source_instance()
        assert evaluate(restored, source).target == system.transform(source)

    def test_malformed_program_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            program_from_dict({"rules": [{"bogus": 1}]})

    def test_skolem_terms_tagged(self):
        program = MappingSystem(cars.figure10_problem()).transformation
        data = program_to_dict(program)
        skolems = [
            t
            for rule in data["rules"]
            for t in rule["head"]["terms"]
            if isinstance(t, dict) and "skolem" in t
        ]
        assert skolems
        assert all("args" in t for t in skolems)


class TestReports:
    def test_generation_report_mentions_prunes(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        text = render_generation_report(system.schema_mapping_result().report)
        assert "skeletons examined: 9" in text
        assert "subsumption" in text
        assert "nonnull-extension" in text
        assert "[kept  ]" in text and "[pruned]" in text

    def test_conflict_report(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        text = render_conflict_report(system)
        assert "key conflicts" in text
        assert "soft" in text

    def test_conflict_report_basic(self, figure1_problem):
        system = MappingSystem(figure1_problem, algorithm="basic")
        text = render_conflict_report(system)
        assert "no key management" in text

    def test_explain_full(self, figure1_problem):
        text = explain(MappingSystem(figure1_problem))
        for section in (
            "schema mapping generation",
            "query generation",
            "transformation",
        ):
            assert section in text

    def test_explain_mentions_fusion(self):
        text = explain(MappingSystem(cars.figure12_problem()))
        assert "fused mappings added" in text

    def test_explain_mentions_unification(self):
        from repro.scenarios.appendix_c import example_6_7_problem

        text = explain(MappingSystem(example_6_7_problem()))
        assert "unified Skolem functors" in text
