"""Additional unit tests for less-travelled code paths."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.datalog.engine import _Store, evaluate_rule
from repro.datalog.program import Rule
from repro.logic.atoms import Disequality, Equality, RelationalAtom
from repro.logic.satisfiability import TermSolver
from repro.logic.terms import Constant, Variable
from repro.model.builder import SchemaBuilder
from repro.scenarios import cars


def V(name):
    return Variable(name)


class TestEngineDisequalities:
    def test_disequality_condition(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, y)),),
            disequalities=(Disequality(y, Constant("skip")),),
        )
        store = _Store()
        store.add_relation("R", [("a", "keep"), ("b", "skip")])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_disequality_between_variables(self):
        x, y, z = V("x"), V("y"), V("z")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, y, z)),),
            disequalities=(Disequality(y, z),),
        )
        store = _Store()
        store.add_relation("R", [("a", 1, 2), ("b", 1, 1)])
        assert evaluate_rule(rule, store) == [("a",)]

    def test_disequality_repr_in_rule(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, y)),),
            disequalities=(Disequality(y, Constant("v")),),
        )
        assert "!=" in repr(rule)


class TestSolverEdges:
    def test_clash_mid_chase(self):
        schema = SchemaBuilder("s").relation("R", "k", "v").build()
        solver = TermSolver()
        k1, k2 = V("k1"), V("k2")
        atoms = [
            RelationalAtom("R", (k1, Constant("a"))),
            RelationalAtom("R", (k2, Constant("b"))),
        ]
        solver.assert_equal(k1, k2)
        solver.chase_keys(atoms, schema)
        assert solver.clashed  # the fd forces a = b

    def test_assertions_after_clash_are_noops(self):
        solver = TermSolver()
        x = V("x")
        solver.assert_equal(x, Constant("a"))
        solver.assert_equal(x, Constant("b"))
        assert solver.clashed
        solver.assert_equal(x, Constant("c"))  # must not raise
        solver.assert_null(x)
        solver.assert_nonnull(x)
        assert solver.clashed

    def test_atoms_over_unknown_relations_are_skipped(self):
        schema = SchemaBuilder("s").relation("R", "k", "v").build()
        solver = TermSolver()
        atoms = [
            RelationalAtom("Mystery", (V("a"), V("b"))),
            RelationalAtom("Mystery", (V("c"), V("d"))),
        ]
        solver.chase_keys(atoms, schema)  # no KeyError
        assert not solver.clashed


class TestCliEdges:
    def test_run_with_missing_instance(self, tmp_path, capsys):
        from repro.cli import main

        problem = tmp_path / "p.txt"
        problem.write_text(
            "source schema S:\n  relation A (k)\n"
            "target schema T:\n  relation B (k)\n"
            "correspondences:\n  A.k -> B.k\n"
        )
        assert main(["run", str(problem), "/does/not/exist"]) == 1
        assert "error" in capsys.readouterr().err

    def test_compile_no_optimize_keeps_subsumed_rules(self, tmp_path, capsys):
        from repro.cli import main

        problem = tmp_path / "p.txt"
        problem.write_text(
            "source schema CARS3:\n"
            "  relation P3 (person key, name, email)\n"
            "  relation C3 (car key, model)\n"
            "  relation O3 (car key -> C3, person -> P3)\n"
            "target schema CARS2:\n"
            "  relation P2 (person key, name, email)\n"
            "  relation C2 (car key, model, person? -> P2)\n"
            "correspondences:\n"
            "  P3.person -> P2.person\n  P3.name -> P2.name\n"
            "  P3.email -> P2.email\n  C3.car -> C2.car\n"
            "  C3.model -> C2.model\n  O3.person -> C2.person\n"
        )
        assert main(["compile", str(problem)]) == 0
        optimized = capsys.readouterr().out.count("P2(")
        assert main(["compile", str(problem), "--no-optimize"]) == 0
        unoptimized = capsys.readouterr().out.count("P2(")
        assert unoptimized > optimized

    def test_match_threshold_flag(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "s.txt"
        source.write_text("relation A (key1, value1)\n")
        target = tmp_path / "t.txt"
        target.write_text("relation B (key1, value1)\n")
        assert main(["match", str(source), str(target), "--threshold", "0.99"]) == 0
        strict = capsys.readouterr().out
        assert main(["match", str(source), str(target), "--threshold", "0.1"]) == 0
        loose = capsys.readouterr().out
        assert loose.count("->") >= strict.count("->")


class TestMatcherPaths:
    def test_path_suggestions_respect_max_depth(self):
        from repro.core.matching import _path_references
        from repro.scenarios.synthetic import chain_schema

        schema = chain_schema(4, nullable_links=False)
        shallow = _path_references(schema, max_depth=1)
        deep = _path_references(schema, max_depth=3)
        assert len(deep) > len(shallow)
        assert all(len(r.steps) <= 2 for r in shallow)

    def test_path_penalty_prefers_plain_match(self, cars3, cars2):
        from repro.core.matching import suggest_correspondences

        suggestions = suggest_correspondences(cars3, cars2, threshold=0.5)
        person_match = next(
            s
            for s in suggestions
            if repr(s.correspondence.target) == "P2.person"
        )
        assert person_match.correspondence.source.is_plain


class TestChaseOrderFallback:
    def test_key_to_key_cycle_still_ordered(self):
        from repro.model.graph import chase_order

        schema = (
            SchemaBuilder("cycle")
            .relation("A", "k")
            .relation("B", "k")
            .foreign_key("A", "k", "B")
            .foreign_key("B", "k", "A")
            .build(validate=False)
        )
        order = chase_order(schema)
        assert sorted(order) == ["A", "B"]


class TestRendererEdges:
    def test_render_rule_with_conditions(self):
        from repro.dsl.renderer import render_rule

        problem = cars.figure14_problem()
        program = MappingSystem(problem).transformation
        null_rule = next(r for r in program.rules if r.null_vars)
        text = render_rule(null_rule)
        assert "=null" in text

    def test_display_renaming_primes_existentials(self):
        from repro.dsl.renderer import render_schema_mapping

        # A.4-style mapping: target email is existential and its display name
        # may collide with nothing — but the Entry scenario collides.
        from repro.core.pipeline import MappingProblem

        source = SchemaBuilder("s").relation("A", "k", "phone?").build()
        target = SchemaBuilder("t").relation("B", "k", "phone?").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("A.k", "B.k")
        text = render_schema_mapping(MappingSystem(problem).schema_mapping)
        assert "p'" in text  # the existential phone got a prime


class TestSqlEdges:
    def test_rule_with_constant_in_body(self):
        from repro.datalog.program import DatalogProgram
        from repro.sqlgen.queries import rule_to_sql

        x = V("x")
        source = SchemaBuilder("s").relation("R", "k", "tag").build()
        target = SchemaBuilder("t").relation("T", "k").build()
        rule = Rule(
            head=RelationalAtom("T", (x,)),
            body=(RelationalAtom("R", (x, Constant("only"))),),
        )
        program = DatalogProgram(
            rules=[rule], source_schema=source, target_schema=target
        )
        sql = rule_to_sql(rule, program)
        assert "= 'only'" in sql

    def test_sql_disequality_parity(self):
        from repro.core.pipeline import MappingProblem
        from repro.model.instance import instance_from_dict
        from repro.sqlgen import run_on_sqlite

        source = SchemaBuilder("s").relation("R", "k", "tag").build()
        target = SchemaBuilder("t").relation("T", "k").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("R.k", "T.k", where="R.tag != 'drop'")
        system = MappingSystem(problem)
        instance = instance_from_dict(
            source, {"R": [("a", "keep"), ("b", "drop")]}
        )
        assert run_on_sqlite(system.transformation, instance) == system.transform(
            instance
        )


class TestMultipleCoverageSelections:
    def test_two_paths_yield_two_candidates(self):
        """A correspondence with two coverage mappings in one skeleton makes
        one candidate per selection (the paper's coverage-mapping machinery)."""
        from repro.core.candidates import generate_candidates
        from repro.core.chase import logical_relations
        from repro.core.pipeline import MappingProblem

        source = (
            SchemaBuilder("s")
            .relation("P", "pid", "name")
            .relation("Match", "mid", "home", "away")
            .foreign_key("Match", "home", "P")
            .foreign_key("Match", "away", "P")
            .build()
        )
        target = SchemaBuilder("t").relation("Star", "mid", "name").build()
        problem = MappingProblem(source, target)
        problem.add_correspondence("Match.mid", "Star.mid")
        # Plain P.name: coverable via the home atom AND via the away atom.
        problem.add_correspondence("P.name", "Star.name")
        generation = generate_candidates(
            logical_relations(source),
            logical_relations(target),
            problem.correspondences,
        )
        match_candidates = [
            c
            for c in generation.candidates
            if c.source_tableau.root_relation == "Match"
            and len(c.selection) == 2
        ]
        assert len(match_candidates) == 2  # home-name and away-name selections
        names = {c.name for c in match_candidates}
        assert any(".1" in n for n in names)  # the selection suffix
        terms = {
            c.source_term(c.selection_by_correspondence()[problem.correspondences[1]])
            for c in match_candidates
        }
        assert len(terms) == 2  # genuinely different value flows
