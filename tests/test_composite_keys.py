"""End-to-end tests for composite keys (the paper's "minor modification")."""

import pytest

from repro.core.conflicts import find_all_conflicts
from repro.core.pipeline import MappingSystem
from repro.core.query_generation import rewrite_to_unitary
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import skolemize_schema_mapping
from repro.logic.terms import SkolemTerm, Variable
from repro.model.validation import validate_instance
from repro.model.values import NULL
from repro.scenarios.composite import (
    composite_skolem_problem,
    enrollment_expected_target,
    enrollment_problem,
    enrollment_source_instance,
)
from repro.sqlgen import run_on_sqlite


class TestEnrollmentConsolidation:
    """Fusion over a composite key: the (course, student) analogue of C.2."""

    def test_schema_mapping(self):
        problem = enrollment_problem()
        system = MappingSystem(problem)
        assert len(system.schema_mapping) == 2
        premises = {
            tuple(a.relation for a in m.premise.atoms) for m in system.schema_mapping
        }
        assert premises == {("Grade",), ("Mentor",)}

    def test_conflicts_on_both_attributes(self):
        problem = enrollment_problem()
        schema_mapping = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        ).schema_mapping
        unitary = rewrite_to_unitary(
            skolemize_schema_mapping(list(schema_mapping), problem.target_schema)
        )
        conflicts = find_all_conflicts(
            unitary, problem.source_schema, problem.target_schema
        )
        assert sorted(c.attribute for c in conflicts) == ["grade", "mentor"]
        assert all(not c.is_hard for c in conflicts)

    def test_fused_mapping_shares_both_key_variables(self):
        system = MappingSystem(enrollment_problem())
        [fused] = system.query_result().resolution.fused
        course_var, student_var = fused.consequent.terms[0], fused.consequent.terms[1]
        assert isinstance(course_var, Variable)
        assert isinstance(student_var, Variable)
        # Both members' premises were re-keyed onto the shared variables.
        for atom in fused.premise.atoms:
            assert atom.terms[0] is course_var
            assert atom.terms[1] is student_var

    def test_negations_correlated_on_both_keys(self):
        system = MappingSystem(enrollment_problem())
        negated = [m for m in system.query_result().final if m.premise.negated]
        assert negated
        for mapping in negated:
            for negation in mapping.premise.negated:
                assert len(negation.correlated) == 2

    def test_transformation_output(self):
        system = MappingSystem(enrollment_problem())
        output = system.transform(enrollment_source_instance())
        assert output == enrollment_expected_target()
        assert validate_instance(output).ok

    def test_sqlite_parity(self):
        system = MappingSystem(enrollment_problem())
        source = enrollment_source_instance()
        assert run_on_sqlite(
            system.transformation, source, enforce_constraints=True
        ) == system.transform(source)

    def test_tmp_relations_have_arity_two(self):
        system = MappingSystem(enrollment_problem())
        assert set(system.transformation.intermediates.values()) == {2}


class TestCompositeSkolemization:
    def test_functor_depends_on_whole_key(self):
        system = MappingSystem(composite_skolem_problem())
        [rule] = system.transformation.rules_for("Timetable")
        room = rule.head.terms[3]
        assert isinstance(room, SkolemTerm)
        # All-Source-Or-Key-Vars, non-key case: the key terms (day, hour).
        assert len(room.args) == 2
        assert room.args[0] is rule.head.terms[0]
        assert room.args[1] is rule.head.terms[1]

    def test_functional_per_slot(self):
        from repro.model.instance import instance_from_dict

        problem = composite_skolem_problem()
        system = MappingSystem(problem)
        source = instance_from_dict(
            problem.source_schema,
            {
                "Slot": [
                    ("mon", "9", "codd"),
                    ("mon", "10", "codd"),
                    ("tue", "9", "dijkstra"),
                ]
            },
        )
        output = system.transform(source)
        rooms = {row[3] for row in output.relation("Timetable")}
        assert len(rooms) == 3  # one invented room per (day, hour)
        assert validate_instance(output).ok


class TestCompositeKeyFunctionality:
    def test_agreement_on_partial_key_is_fine(self):
        """Two tuples sharing only part of the key never key-conflict."""
        from repro.model.instance import instance_from_dict

        problem = enrollment_problem()
        system = MappingSystem(problem)
        source = instance_from_dict(
            problem.source_schema,
            {
                "Grade": [("db", "ada", "A"), ("db", "alan", "F")],
                "Mentor": [],
            },
        )
        output = system.transform(source)
        assert len(output.relation("Enrollment")) == 2
        assert validate_instance(output).ok

    def test_hard_conflict_detected_with_composite_keys(self):
        from repro.core.pipeline import MappingProblem
        from repro.errors import HardKeyConflictError
        from repro.model.builder import SchemaBuilder

        source = (
            SchemaBuilder("s")
            .relation("A", "c", "s", "v", key=["c", "s"])
            .relation("B", "c", "s", "v", key=["c", "s"])
            .build()
        )
        target = (
            SchemaBuilder("t").relation("T", "c", "s", "v", key=["c", "s"]).build()
        )
        problem = MappingProblem(source, target)
        for relation in ("A", "B"):
            problem.add_correspondence(f"{relation}.c", "T.c")
            problem.add_correspondence(f"{relation}.s", "T.s")
            problem.add_correspondence(f"{relation}.v", "T.v")
        with pytest.raises(HardKeyConflictError):
            MappingSystem(problem).transformation
