"""Engine differential testing: reference vs batch vs SQLite.

The reference interpreter (`repro.datalog.engine`) is the oracle.  The batch
runtime (`repro.datalog.exec`) and the SQL translation executed on SQLite
must agree with it — identical target instances up to LabeledNull
isomorphism (`repro.model.diff.diff_up_to_invented`) — on:

* every bundled scenario's canonical instances (the frozen per-rule source
  instances the semantic verifier builds),
* a sample of seeded generated scenarios with their paired random source
  instances (``repro.scenarios.generator``), and
* the synthetic CARS workloads the scaling benchmarks sweep.

The batch engine must also reproduce the reference engine's intermediate
relations and per-rule counts, and its opt-in ``workers=N`` mode must change
nothing but wall time.
"""

from __future__ import annotations

import pytest

from repro.analysis.semantic.verifier import canonical_instances
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.model.diff import diff_up_to_invented
from repro.scenarios import bundled_problems
from repro.scenarios.cars import figure1_problem, figure12_problem, figure14_problem
from repro.scenarios.generator import generate_scenario
from repro.scenarios.synthetic import cars2_instance, cars3_instance, cars4_instance
from repro.sqlgen.executor import duckdb_available, run_on_duckdb, run_on_sqlite


def _scenario_names():
    return sorted(bundled_problems())


def _assert_agreement(program, source, context):
    reference = evaluate(program, source)
    batch = evaluate_batch(program, source)

    target_diff = diff_up_to_invented(reference.target, batch.target)
    assert target_diff.empty, (
        f"batch engine disagrees with reference on {context}:\n"
        + target_diff.to_text()
    )
    assert reference.rule_counts == batch.rule_counts, context
    assert set(reference.intermediates) == set(batch.intermediates), context
    for name, rows in reference.intermediates.items():
        assert set(rows) == set(batch.intermediates[name]), (context, name)

    sqlite_target = run_on_sqlite(program, source)
    sqlite_diff = diff_up_to_invented(reference.target, sqlite_target)
    assert sqlite_diff.empty, (
        f"SQLite disagrees with reference on {context}:\n" + sqlite_diff.to_text()
    )

    if duckdb_available():  # optional dependency: checked when installed
        duckdb_target = run_on_duckdb(program, source)
        duckdb_diff = diff_up_to_invented(reference.target, duckdb_target)
        assert duckdb_diff.empty, (
            f"DuckDB disagrees with reference on {context}:\n"
            + duckdb_diff.to_text()
        )
    return reference


class TestBundledScenarios:
    """All three engines agree on every scenario's canonical instances."""

    @pytest.mark.parametrize("name", _scenario_names())
    def test_canonical_instances_agree(self, name):
        problem = bundled_problems()[name]
        program = MappingSystem(problem).transformation
        checked = 0
        for label, instance in canonical_instances(program):
            _assert_agreement(program, instance, f"{name} / {label}")
            checked += 1
        assert checked > 0, f"no canonical instance for {name!r}"


class TestGeneratedScenarios:
    """All engines agree on generated scenarios' paired random instances."""

    @pytest.mark.parametrize("seed", range(12))
    def test_generated_scenarios_agree(self, seed):
        scenario = generate_scenario(seed)
        program = MappingSystem(scenario.problem).transformation
        _assert_agreement(program, scenario.source_instance, scenario.name)


#: (label, problem factory, instance factory) — the scaling workloads.
SYNTHETIC_WORKLOADS = [
    (
        "figure1-cars3",
        figure1_problem,
        lambda n: cars3_instance(
            n_persons=n // 2, n_cars=n, ownership=0.6, seed=n
        ),
    ),
    (
        "figure12-cars4",
        figure12_problem,
        lambda n: cars4_instance(n_persons=n // 2, n_cars=n, seed=n),
    ),
    (
        "figure14-cars2",
        figure14_problem,
        lambda n: cars2_instance(n_persons=n // 2, n_cars=n, seed=n),
    ),
]


class TestSyntheticWorkloads:
    @pytest.mark.parametrize("size", [40, 200])
    @pytest.mark.parametrize(
        "label,problem_factory,instance_factory",
        SYNTHETIC_WORKLOADS,
        ids=[w[0] for w in SYNTHETIC_WORKLOADS],
    )
    def test_cars_workloads_agree(self, label, problem_factory, instance_factory, size):
        program = MappingSystem(problem_factory()).transformation
        source = instance_factory(size)
        result = _assert_agreement(program, source, f"{label} n={size}")
        assert result.target.total_size() > 0


@pytest.mark.serial
class TestWorkersMode:
    """workers=N partitions the outer scan without changing the answer."""

    def test_partitioned_run_matches_inline(self):
        program = MappingSystem(figure1_problem()).transformation
        source = cars3_instance(n_persons=60, n_cars=120, ownership=0.6, seed=9)
        inline = evaluate_batch(program, source)
        # min_partition_rows=1 forces every rule through the process pool.
        partitioned = evaluate_batch(
            program, source, workers=2, min_partition_rows=1
        )
        assert inline.target == partitioned.target
        assert diff_up_to_invented(inline.target, partitioned.target).empty
        for name, rows in inline.intermediates.items():
            assert set(rows) == set(partitioned.intermediates[name]), name
        assert inline.rule_counts == partitioned.rule_counts

    def test_small_scans_stay_inline(self):
        """Below the partition threshold workers=N must not spawn a pool."""
        program = MappingSystem(figure12_problem()).transformation
        source = cars4_instance(n_persons=10, n_cars=20, seed=4)
        reference = evaluate(program, source)
        partitioned = evaluate_batch(program, source, workers=4)
        assert reference.target == partitioned.target
