"""The typed metrics registry: instruments, merging, scopes and exporters.

The merge-associativity and bucket-monotonicity properties asserted here are
what make the worker fan-in of ``repro.datalog.exec.workers`` and the
``run_scope`` fold of ``MappingSystem`` correct in any order.
"""

import json
import math
import pathlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeError,
    current_metrics,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_enabled,
    use_metrics,
)
from repro.obs.metrics import NOOP_METRICS
from repro.obs.metrics_export import (
    metrics_snapshot_json,
    read_metrics_json,
    to_openmetrics,
    write_metrics_json,
    write_openmetrics,
)
from repro.obs.schema import SchemaViolation, validate

SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "docs" / "metrics.schema.json"
)


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = Counter("eval.rows")
        counter.inc(3, engine="batch")
        counter.inc(2, engine="batch")
        counter.inc(5, engine="reference")
        assert counter.value(engine="batch") == 5
        assert counter.value(engine="reference") == 5
        assert counter.total() == 10

    def test_unlabeled_and_missing_default_to_zero(self):
        counter = Counter("x")
        assert counter.value() == 0
        counter.inc()
        assert counter.value() == 1

    def test_counters_cannot_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_label_values_are_stringified(self):
        counter = Counter("x")
        counter.inc(1, size=100)
        assert counter.value(size="100") == 1


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("queue.depth")
        gauge.set(5, worker="a")
        gauge.set(2, worker="a")
        assert gauge.value(worker="a") == 2

    def test_merge_is_last_write_wins(self):
        left, right = Gauge("g"), Gauge("g")
        left.set(1)
        right.set(9)
        left.merge(right)
        assert left.value() == 9


class TestHistogram:
    def test_buckets_must_be_strictly_increasing(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=(2.0, 1.0))

    def test_observation_lands_in_le_bucket(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)  # <= 0.1
        hist.observe(0.5)  # <= 1.0
        hist.observe(3.0)  # +inf overflow
        assert hist.cumulative_counts() == [1, 2, 3]
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(3.55)

    def test_boundary_value_belongs_to_its_bucket(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.1)
        assert hist.cumulative_counts() == [1, 1, 1]

    def test_merge_rejects_different_buckets(self):
        left = Histogram("h", buckets=(0.1, 1.0))
        right = Histogram("h", buckets=(0.5,))
        with pytest.raises(MetricTypeError, match="bucket boundaries"):
            left.merge(right)


class TestRegistry:
    def test_accessors_are_create_or_get(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_name_reuse_across_types_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(MetricTypeError, match="is a counter"):
            registry.gauge("a")
        registry.histogram("h")
        with pytest.raises(MetricTypeError, match="already registered"):
            registry.histogram("h", buckets=(1.0,))

    def test_merge_adds_counters_and_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("c").inc(1, k="x")
        right.counter("c").inc(2, k="x")
        right.counter("c").inc(7, k="y")
        left.histogram("h").observe(0.01)
        right.histogram("h").observe(0.01)
        left.merge(right)
        assert left.counter("c").value(k="x") == 3
        assert left.counter("c").value(k="y") == 7
        assert left.histogram("h").count() == 2

    def test_run_scope_folds_into_parent_even_on_error(self):
        parent = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with parent.run_scope():
                metric_inc("c", 4)
                raise RuntimeError("boom")
        assert parent.counter("c").value() == 4


class TestContextvarDispatch:
    def test_disabled_by_default(self):
        assert not metrics_enabled()
        assert current_metrics() is NOOP_METRICS
        metric_inc("ignored")  # must not raise, must not record anywhere
        metric_set("ignored", 1.0)
        metric_observe("ignored", 1.0)

    def test_helpers_hit_the_installed_registry(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            assert metrics_enabled()
            metric_inc("c", 2, op="join")
            metric_set("g", 3.5)
            metric_observe("h", 0.2)
        assert not metrics_enabled()
        assert registry.counter("c").value(op="join") == 2
        assert registry.gauge("g").value() == 3.5
        assert registry.histogram("h").count() == 1


# -- property tests ---------------------------------------------------------

_values = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@settings(max_examples=80, deadline=None)
@given(st.lists(_values, max_size=50))
def test_histogram_cumulative_counts_are_monotone(observations):
    hist = Histogram("h", buckets=DEFAULT_BUCKETS)
    for value in observations:
        hist.observe(value)
    cumulative = hist.cumulative_counts()
    assert cumulative == sorted(cumulative)
    assert cumulative[-1] == len(observations)
    assert hist.sum() == pytest.approx(sum(observations))


# Dyadic rationals: exactly representable, so small sums carry no rounding
# error and merge associativity can be asserted exactly.
_exact_values = st.integers(min_value=0, max_value=2**20).map(lambda n: n / 1024)


def _registries(draw):
    registry = MetricsRegistry()
    for value, label in draw(
        st.lists(st.tuples(_exact_values, st.sampled_from("ab")), max_size=8)
    ):
        registry.counter("c").inc(value, k=label)
        registry.histogram("h").observe(value)
    for value in draw(st.lists(_exact_values, max_size=3)):
        registry.gauge("g").set(value)
    return registry


registries = st.composite(_registries)()


@settings(max_examples=60, deadline=None)
@given(registries, registries, registries)
def test_merge_is_associative(a, b, c):
    left = a.copy().merge(b.copy().merge(c.copy()))
    right = a.copy().merge(b.copy()).merge(c.copy())
    assert left.snapshot() == right.snapshot()


@settings(max_examples=60, deadline=None)
@given(registries, registries)
def test_merge_counts_add_up(a, b):
    total = a.counter("c").total() + b.counter("c").total()
    merged = a.copy().merge(b)
    assert merged.counter("c").total() == pytest.approx(total)
    assert merged.histogram("h").count() == (
        a.histogram("h").count() + b.histogram("h").count()
    )


# -- serialization ----------------------------------------------------------


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("eval.rows", help="rows per stage").inc(41, engine="batch")
    registry.counter("eval.rows").inc(1, engine="reference")
    registry.gauge("run.workers").set(2)
    hist = registry.histogram("eval.run.seconds")
    hist.observe(0.002)
    hist.observe(1.5)
    return registry


class TestSnapshot:
    def test_round_trip_is_exact(self):
        registry = _populated_registry()
        rebuilt = MetricsRegistry.from_snapshot(registry.snapshot())
        assert rebuilt.snapshot() == registry.snapshot()

    def test_snapshot_validates_against_pinned_schema(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        validate(_populated_registry().snapshot(), schema)  # must not raise
        validate(MetricsRegistry().snapshot(), schema)  # empty registry too

    def test_schema_rejects_malformed_snapshots(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        broken = _populated_registry().snapshot()
        broken["metrics"][0]["type"] = "summary"
        with pytest.raises(SchemaViolation):
            validate(broken, schema)
        with pytest.raises(SchemaViolation):
            validate({"metrics": []}, schema)  # version is required

    def test_json_file_round_trip(self, tmp_path):
        registry = _populated_registry()
        path = tmp_path / "metrics.json"
        write_metrics_json(registry, str(path))
        assert json.loads(path.read_text()) == registry.snapshot()
        rebuilt = read_metrics_json(str(path))
        assert rebuilt.snapshot() == registry.snapshot()
        assert metrics_snapshot_json(rebuilt) == metrics_snapshot_json(registry)


class TestOpenMetrics:
    def test_exposition_format(self, tmp_path):
        text = to_openmetrics(_populated_registry())
        assert text.endswith("# EOF\n")
        assert "# TYPE eval_rows counter" in text
        assert "# HELP eval_rows rows per stage" in text
        assert 'eval_rows_total{engine="batch"} 41' in text
        assert "# TYPE run_workers gauge" in text
        assert "run_workers 2" in text
        assert "# TYPE eval_run_seconds histogram" in text
        assert 'eval_run_seconds_bucket{le="+Inf"} 2' in text
        assert "eval_run_seconds_count 2" in text
        path = tmp_path / "metrics.txt"
        write_openmetrics(_populated_registry(), str(path))
        assert path.read_text() == text

    def test_cumulative_buckets_in_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = to_openmetrics(registry)
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 2' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, path='a"b\\c')
        line = [
            l for l in to_openmetrics(registry).splitlines() if l.startswith("c_total")
        ][0]
        assert line == 'c_total{path="a\\"b\\\\c"} 1'

    def test_infinite_bound_renders_plus_inf(self):
        assert math.inf  # documents the +Inf convention exercised above
