"""Property-based tests for the semantic analyzer.

Three layers, each driven by hypothesis:

* the containment engine is reflexive, invariant under variable renaming,
  monotone under added body atoms, and (conditionally) transitive on
  randomly generated conjunctive queries;
* ``minimize_program`` never changes what the Datalog engine computes,
  both on randomly drawn mapping problems and on random synthetic source
  instances for the paper's figure-10/figure-14 scenarios;
* the differential optimizer verifier certifies every randomly drawn
  problem the pipeline accepts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis.semantic.containment import (
    ConjunctiveQuery,
    contained_in,
    equivalent,
)
from repro.analysis.semantic.minimize import minimize_program
from repro.analysis.semantic.verifier import verify_system
from repro.core.pipeline import MappingProblem, MappingSystem
from repro.datalog.engine import evaluate
from repro.errors import HardKeyConflictError, NonFunctionalMappingError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.model.builder import SchemaBuilder
from repro.model.instance import Instance
from repro.model.values import NULL
from repro.scenarios import cars, synthetic

# ---------------------------------------------------------------------------
# Random conjunctive queries over a fixed relational signature.

_SIGNATURE = [("R", 2), ("S", 2), ("T", 1)]


@st.composite
def queries(draw):
    """A safe conjunctive query: every head variable occurs in the body."""
    variables = [Variable(f"v{i}") for i in range(4)]
    n_atoms = draw(st.integers(min_value=1, max_value=4))
    atoms = []
    for _ in range(n_atoms):
        name, arity = draw(st.sampled_from(_SIGNATURE))
        args = tuple(draw(st.sampled_from(variables)) for _ in range(arity))
        atoms.append(RelationalAtom(name, args))
    body_vars = sorted(
        {v for atom in atoms for v in atom.terms}, key=lambda v: v.name
    )
    head = tuple(
        draw(st.sampled_from(body_vars))
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    )
    return ConjunctiveQuery(head_label="Q", head=head, atoms=tuple(atoms))


def _renamed(query):
    """The same query over fresh Variable objects (alpha-renaming)."""
    fresh = {}

    def sub(term):
        if isinstance(term, Variable):
            if term not in fresh:
                fresh[term] = Variable(term.name + "'")
            return fresh[term]
        return term

    return ConjunctiveQuery(
        head_label=query.head_label,
        head=tuple(sub(t) for t in query.head),
        atoms=tuple(
            RelationalAtom(a.relation, tuple(sub(t) for t in a.terms))
            for a in query.atoms
        ),
    )


@settings(max_examples=80, deadline=None)
@given(queries())
def test_containment_is_reflexive(query):
    assert contained_in(query, query) is not None
    assert equivalent(query, query) is not None


@settings(max_examples=80, deadline=None)
@given(queries())
def test_renaming_preserves_equivalence(query):
    other = _renamed(query)
    assert contained_in(query, other) is not None
    assert contained_in(other, query) is not None


@settings(max_examples=80, deadline=None)
@given(queries(), st.data())
def test_extra_atoms_restrict(query, data):
    """Adding body atoms over existing variables can only shrink the answer."""
    variables = sorted(
        {v for atom in query.atoms for v in atom.terms}, key=lambda v: v.name
    )
    name, arity = data.draw(st.sampled_from(_SIGNATURE))
    extra = RelationalAtom(
        name, tuple(data.draw(st.sampled_from(variables)) for _ in range(arity))
    )
    restricted = ConjunctiveQuery(
        head_label=query.head_label,
        head=query.head,
        atoms=query.atoms + (extra,),
    )
    assert contained_in(restricted, query) is not None


@settings(max_examples=60, deadline=None)
@given(queries(), queries(), queries())
def test_containment_is_transitive(q1, q2, q3):
    if contained_in(q1, q2) is None or contained_in(q2, q3) is None:
        return  # premise not established; nothing to check
    assert contained_in(q1, q3) is not None


# ---------------------------------------------------------------------------
# Random mapping problems, mirroring tests/test_fuzz_pipeline.py.


def _source_schema():
    return (
        SchemaBuilder("prop-src")
        .relation("S1", "k", "a", "b?")
        .relation("S2", "k", "c")
        .build()
    )


def _target_schema():
    return (
        SchemaBuilder("prop-tgt")
        .relation("T1", "k", "x?", "y")
        .relation("T2", "k", "z?")
        .build()
    )


_SOURCE_ATTRS = ["S1.k", "S1.a", "S1.b", "S2.k", "S2.c"]
_TARGET_ATTRS = ["T1.k", "T1.x", "T1.y", "T2.k", "T2.z"]


@st.composite
def problems(draw):
    pairs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(_SOURCE_ATTRS), st.sampled_from(_TARGET_ATTRS)
            ),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    problem = MappingProblem(_source_schema(), _target_schema(), name="prop")
    for source, target in pairs:
        problem.add_correspondence(source, target)
    return problem


@st.composite
def instances(draw):
    instance = Instance(_source_schema())
    for i in range(draw(st.integers(min_value=0, max_value=4))):
        b = draw(st.sampled_from(["b0", "b1", None]))
        instance.add("S1", (f"k{i}", f"a{i % 2}", NULL if b is None else b))
    for i in range(draw(st.integers(0, 3))):
        instance.add("S2", (f"k{i}", f"c{i}"))
    return instance


@settings(max_examples=40, deadline=None)
@given(problems(), instances())
def test_minimize_preserves_engine_output(problem, source):
    try:
        program = MappingSystem(problem, optimize=False).query_result().program
    except (NonFunctionalMappingError, HardKeyConflictError):
        return  # the paper's "signal an error and stop" — a valid outcome
    minimized = minimize_program(program)
    assert len(minimized.program.rules) + len(minimized.removed) == len(
        program.rules
    )
    before = evaluate(program, source).target
    after = evaluate(minimized.program, source).target
    assert before == after


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=100),
)
def test_minimize_preserves_figure_scenarios(n_persons, n_cars, seed):
    cases = [
        (cars.figure10_problem(), synthetic.cars3_instance(n_persons, n_cars, seed=seed)),
        (cars.figure14_problem(), synthetic.cars2_instance(n_persons, n_cars, seed=seed)),
    ]
    for problem, source in cases:
        program = MappingSystem(problem, optimize=False).query_result().program
        minimized = minimize_program(program)
        assert minimized.removed, problem.name
        assert evaluate(program, source).target == evaluate(
            minimized.program, source
        ).target, problem.name


@settings(max_examples=25, deadline=None)
@given(problems())
def test_verifier_certifies_random_problems(problem):
    try:
        system = MappingSystem(problem)
        report = verify_system(system)
    except (NonFunctionalMappingError, HardKeyConflictError):
        return
    assert report.ok, [c.detail for c in report.failures()]
