"""The constraint certifier: verdicts, witnesses, counterexamples, CLI.

The central claims under test:

* every key / foreign-key / NOT NULL constraint of every bundled scenario is
  **PROVED** with a recorded witness (the paper's validity guarantee as a
  machine-checked theorem);
* deliberately broken mappings are **REFUTED**, and every refutation carries
  a minimal counterexample source instance that really violates the
  constraint — on both evaluation engines (the refutation-soundness
  contract; `tests/test_certify_soundness.py` fuzzes the PROVED side);
* the basic (Clio-style) algorithm on Figure 1 is refuted exactly where the
  paper says it misbehaves: the key of ``C2``, and nowhere else;
* termination is a precondition — an unbounded program downgrades every
  other verdict to UNKNOWN instead of claiming proofs the canonical-instance
  arguments no longer support.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.certify import (
    PROVED,
    REFUTED,
    UNKNOWN,
    certify_program,
    certify_termination,
)
from repro.analysis.diagnostics import ERROR, WARNING
from repro.cli import main
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.datalog.program import DatalogProgram, Rule
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import SkolemTerm, Variable
from repro.model.builder import SchemaBuilder
from repro.model.validation import validate_instance
from repro.scenarios import bundled_problems


def _rule(head, body, **kwargs):
    return Rule(head=head, body=tuple(body), **kwargs)


# --- broken fixtures -------------------------------------------------------


def broken_notnull_program() -> DatalogProgram:
    """Copies a nullable source attribute into a mandatory target one."""
    source = (
        SchemaBuilder("s").relation("S", "k", "a?", key="k").build(validate=False)
    )
    target = (
        SchemaBuilder("t").relation("T", "k", "a", key="k").build(validate=False)
    )
    k, a = Variable("k"), Variable("a")
    rule = _rule(
        RelationalAtom("T", (k, a)), [RelationalAtom("S", (k, a))]
    )
    return DatalogProgram(
        rules=[rule], source_schema=source, target_schema=target
    )


def broken_key_program() -> DatalogProgram:
    """Two unguarded rules can emit key-equal, value-different rows."""
    source = (
        SchemaBuilder("s")
        .relation("S1", "k", "a", key="k")
        .relation("S2", "k", "b", key="k")
        .build(validate=False)
    )
    target = (
        SchemaBuilder("t").relation("T", "k", "v", key="k").build(validate=False)
    )
    k1, a = Variable("k"), Variable("a")
    k2, b = Variable("k"), Variable("b")
    rules = [
        _rule(RelationalAtom("T", (k1, a)), [RelationalAtom("S1", (k1, a))]),
        _rule(RelationalAtom("T", (k2, b)), [RelationalAtom("S2", (k2, b))]),
    ]
    return DatalogProgram(
        rules=rules, source_schema=source, target_schema=target
    )


def broken_fk_program() -> DatalogProgram:
    """The FK column of ``T`` is fed independently of ``U``'s key."""
    source = (
        SchemaBuilder("s")
        .relation("S", "k", "r", key="k")
        .relation("W", "u", key="u")
        .build(validate=False)
    )
    target = (
        SchemaBuilder("t")
        .relation("T", "k", "r", key="k")
        .relation("U", "u", key="u")
        .foreign_key("T", "r", "U")
        .build(validate=False)
    )
    k, r, u = Variable("k"), Variable("r"), Variable("u")
    rules = [
        _rule(RelationalAtom("T", (k, r)), [RelationalAtom("S", (k, r))]),
        _rule(RelationalAtom("U", (u,)), [RelationalAtom("W", (u,))]),
    ]
    return DatalogProgram(
        rules=rules, source_schema=source, target_schema=target
    )


def unbounded_program() -> DatalogProgram:
    """``T(f(x)) <- T(x)``: a special cycle, no chase-depth bound."""
    target = SchemaBuilder("t").relation("T", "x", key="x").build(validate=False)
    x = Variable("x")
    rule = _rule(
        RelationalAtom("T", (SkolemTerm("f", (x,)),)),
        [RelationalAtom("T", (x,))],
    )
    return DatalogProgram(rules=[rule], target_schema=target)


BROKEN_FIXTURES = {
    "not-null": broken_notnull_program,
    "key": broken_key_program,
    "foreign-key": broken_fk_program,
}


# --- termination -----------------------------------------------------------


class TestTermination:
    def test_bundled_programs_bounded(self):
        for name, problem in bundled_problems().items():
            program = MappingSystem(problem).compile()
            certificate = certify_termination(program)
            assert certificate.bounded, name
            assert certificate.depth_bound is not None
            assert 0 <= certificate.depth_bound <= 1, name
            assert "weakly acyclic" in certificate.witness()

    def test_recursive_skolem_unbounded(self):
        certificate = certify_termination(unbounded_program())
        assert not certificate.bounded
        assert certificate.cycle
        assert "T.0" in certificate.witness()

    def test_unbounded_downgrades_everything(self):
        report = certify_program(unbounded_program(), subject="unbounded")
        assert not report.ok
        termination = report.of_kind("termination")
        assert [v.verdict for v in termination] == [UNKNOWN]
        others = [v for v in report.verdicts if v.kind != "termination"]
        assert others, "constraints of the target schema must still appear"
        assert all(v.verdict == UNKNOWN for v in others)
        assert all("termination precondition" in v.reason for v in others)


# --- the central theorem ---------------------------------------------------


class TestBundledScenariosProved:
    def test_every_constraint_proved_with_witness(self):
        total = 0
        for name, problem in bundled_problems().items():
            report = MappingSystem(problem).certify()
            assert report.ok, (name, report.summary())
            for verdict in report.verdicts:
                assert verdict.verdict == PROVED, (name, verdict.constraint)
                assert verdict.witness, (name, verdict.constraint)
            total += len(report.verdicts)
        # Per-constraint granularity: every relation key, every FK, every
        # mandatory attribute, plus one termination verdict per scenario.
        expected = 0
        for problem in bundled_problems().values():
            schema = problem.target_schema
            expected += 1  # termination
            expected += sum(1 for _ in schema)
            expected += len(schema.foreign_keys)
            expected += sum(
                1
                for relation in schema
                for attribute in relation.attributes
                if not attribute.nullable
            )
        assert total == expected

    def test_proved_verdicts_produce_no_diagnostics(self):
        report = MappingSystem(bundled_problems()["figure-1"]).certify()
        assert report.diagnostics().diagnostics == []


class TestGeneratedScenarios:
    """Seeded weakly acyclic scenarios certify with no refutations."""

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_scenario_certifies_clean(self, seed):
        from repro.scenarios.generator import generate_scenario

        scenario = generate_scenario(seed)
        report = MappingSystem(scenario.problem).certify()
        assert not report.refuted, report.render()
        termination = report.of_kind("termination")
        assert [v.verdict for v in termination] == [PROVED]


# --- refutations -----------------------------------------------------------


class TestRefutations:
    @pytest.mark.parametrize("kind", sorted(BROKEN_FIXTURES))
    def test_broken_fixture_refuted(self, kind):
        program = BROKEN_FIXTURES[kind]()
        report = certify_program(program, subject=f"broken-{kind}")
        refuted = [v for v in report.of_kind(kind) if v.verdict == REFUTED]
        assert refuted, report.render()
        for verdict in refuted:
            assert verdict.counterexample is not None
            assert verdict.reason

    @pytest.mark.parametrize("kind", sorted(BROKEN_FIXTURES))
    def test_counterexample_is_valid_and_reproduces(self, kind):
        """The refutation-soundness contract, checked end to end."""
        program = BROKEN_FIXTURES[kind]()
        report = certify_program(program)
        for verdict in report.refuted:
            source = verdict.counterexample
            # The counterexample is a *valid* source instance ...
            assert validate_instance(source).ok
            # ... whose transformation violates the constraint on both
            # engines.
            for run in (evaluate, evaluate_batch):
                target = run(program, source).target
                violations = validate_instance(target)
                assert not violations.ok, (kind, run.__name__)
                assert self._trips(verdict, violations), (kind, run.__name__)

    @staticmethod
    def _trips(verdict, violations) -> bool:
        if verdict.kind == "key":
            return any(
                item.relation == verdict.relation
                for item in violations.key_violations
            )
        if verdict.kind == "not-null":
            return any(
                item.relation == verdict.relation
                for item in violations.null_violations
            )
        return any(
            item.relation == verdict.relation
            for item in violations.foreign_key_violations
        )

    @pytest.mark.parametrize("kind", sorted(BROKEN_FIXTURES))
    def test_counterexample_is_minimal(self, kind):
        """Dropping any single row must kill the reproduction."""
        program = BROKEN_FIXTURES[kind]()
        report = certify_program(program)
        for verdict in report.refuted:
            source = verdict.counterexample
            for relation in source.schema:
                for row in source.relation(relation.name).rows:
                    smaller = self._without(source, relation.name, row)
                    if not validate_instance(smaller).ok:
                        continue  # not a candidate counterexample at all
                    target = evaluate(program, smaller).target
                    assert not self._trips(
                        verdict, validate_instance(target)
                    ), (kind, relation.name, row)

    @staticmethod
    def _without(instance, relation_name, row):
        from repro.model.instance import Instance

        smaller = Instance(instance.schema)
        for relation in instance.schema:
            for other in instance.relation(relation.name).rows:
                if relation.name == relation_name and other == row:
                    continue
                smaller.add(relation.name, other)
        return smaller


class TestBasicAlgorithmFigure1:
    """The paper's motivating failure, statically rediscovered."""

    @pytest.fixture(scope="class")
    def report(self):
        problem = bundled_problems()["figure-1"]
        return MappingSystem(problem, algorithm="basic").certify()

    def test_key_of_c2_refuted(self, report):
        refuted = report.refuted
        assert [(v.kind, v.relation) for v in refuted] == [("key", "C2")]
        assert refuted[0].counterexample is not None

    def test_everything_else_proved(self, report):
        others = [v for v in report.verdicts if v.verdict != REFUTED]
        assert all(v.verdict == PROVED for v in others)
        assert {v.kind for v in others} >= {
            "termination",
            "foreign-key",
            "not-null",
        }


# --- report surface --------------------------------------------------------


class TestReportSurface:
    def test_render_and_to_dict(self):
        report = certify_program(broken_key_program(), subject="broken-key")
        text = report.render()
        assert "REFUTED" in text and "counterexample" in text
        data = report.to_dict()
        assert data["subject"] == "broken-key"
        assert data["counts"][REFUTED] >= 1
        verdicts = {v["constraint"]: v for v in data["verdicts"]}
        assert any(v["verdict"] == REFUTED for v in verdicts.values())
        json.dumps(data)  # machine-readable end to end

    def test_diagnostic_severity_mapping(self):
        refuted_report = certify_program(broken_key_program())
        items = refuted_report.diagnostics().diagnostics
        assert any(
            item.code == "CER001" and item.severity == ERROR for item in items
        )
        unknown_report = certify_program(unbounded_program())
        severities = {
            item.code: item.severity
            for item in unknown_report.diagnostics().diagnostics
        }
        # UNKNOWN downgrades to warning; the registry default stays error.
        assert severities["TRM001"] == WARNING
        assert all(sev == WARNING for sev in severities.values())

    def test_notnull_verdicts_carry_spans(self):
        """DSL-declared target schemas thread spans into the verdicts."""
        from pathlib import Path

        from repro.dsl.parser import parse_problem

        text = Path("examples/figure1.problem.txt").read_text()
        problem = parse_problem(text)
        report = MappingSystem(problem).certify()
        spanned = [v for v in report.of_kind("not-null") if v.span is not None]
        assert spanned, "target schema spans must reach the verdicts"


class TestPipelineSurface:
    def test_certify_is_cached(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        assert system.certify() is system.certify()

    def test_certify_invalidated_on_change(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        first = system.certify()
        # A freshly built problem carries new correspondence objects, so the
        # fingerprint check must drop the cached report.
        system.problem = bundled_problems()["figure-1"]
        assert system.certify() is not first


# --- CLI -------------------------------------------------------------------


class TestCli:
    def test_certify_scenario_exit_zero(self, capsys):
        assert main(["certify", "--scenario", "figure-1"]) == 0
        out = capsys.readouterr().out
        assert "PROVED" in out and "witness" in out

    def test_certify_basic_refuted_exit_one(self, capsys):
        code = main(
            ["certify", "--scenario", "figure-1", "--algorithm", "basic"]
        )
        assert code == 1
        assert "REFUTED" in capsys.readouterr().out

    def test_fail_on_never(self):
        code = main(
            [
                "certify",
                "--scenario",
                "figure-1",
                "--algorithm",
                "basic",
                "--fail-on",
                "never",
            ]
        )
        assert code == 0

    def test_json_output(self, capsys):
        assert main(["certify", "--scenario", "figure-1", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["subject"] == "figure-1"
        assert all(v["verdict"] == PROVED for v in data["verdicts"])

    def test_sarif_out(self, tmp_path, capsys):
        out = tmp_path / "certify.sarif"
        code = main(
            [
                "certify",
                "--scenario",
                "figure-1",
                "--algorithm",
                "basic",
                "--sarif-out",
                str(out),
            ]
        )
        assert code == 1
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        rule_ids = {
            result["ruleId"]
            for run in sarif["runs"]
            for result in run["results"]
        }
        assert "CER001" in rule_ids

    def test_lint_certify_folds_findings(self, capsys):
        code = main(
            [
                "lint",
                "--scenario",
                "figure-1",
                "--certify",
                "--algorithm",
                "basic",
            ]
        )
        assert code == 1
        assert "CER001" in capsys.readouterr().out
