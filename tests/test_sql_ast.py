"""Tests for the typed SQL AST: literals, dialects, Skolem encoding."""

import pytest

from repro.errors import QueryGenerationError
from repro.model.values import NULL, LabeledNull
from repro.sqlgen.ast import (
    Cmp,
    Col,
    CreateTable,
    DUCKDB,
    InsertSelect,
    IsNull,
    Lit,
    NotExists,
    NullLit,
    NullSafeEq,
    NullSafeNe,
    SQLITE,
    Select,
    SelectItem,
    TableRef,
    dialect_named,
    looks_like_skolem_encoding,
    match_skolem_encode,
    skolem_encode,
    sql_literal,
)
from repro.sqlgen.values import decode_value, encode_value


class TestSqlLiteral:
    def test_strings_quote(self):
        assert sql_literal("a'b") == "'a''b'"
        assert sql_literal("plain") == "'plain'"

    def test_integers(self):
        assert sql_literal(5) == "5"
        assert sql_literal(-3) == "-3"

    def test_bool_renders_as_integer(self):
        # bool is a subclass of int: str(True) would leak a bare token.
        assert sql_literal(True) == "1"
        assert sql_literal(False) == "0"

    def test_finite_floats(self):
        assert sql_literal(2.5) == "2.5"

    def test_infinities_render_as_out_of_range_decimals(self):
        assert sql_literal(float("inf")) == "9e999"
        assert sql_literal(float("-inf")) == "-9e999"

    def test_nan_rejected(self):
        with pytest.raises(QueryGenerationError):
            sql_literal(float("nan"))


class TestDialects:
    def test_dialect_named(self):
        assert dialect_named("sqlite") is SQLITE
        assert dialect_named("duckdb") is DUCKDB
        with pytest.raises(QueryGenerationError):
            dialect_named("oracle")

    def test_null_safe_eq_spelling(self):
        predicate = NullSafeEq(Col("t0", "a"), Col("t1", "b"))
        assert predicate.render(SQLITE) == 't0."a" IS t1."b"'
        assert predicate.render(DUCKDB) == 't0."a" IS NOT DISTINCT FROM t1."b"'

    def test_null_safe_ne_spelling(self):
        predicate = NullSafeNe(Col("t0", "a"), Lit("x"))
        assert predicate.render(SQLITE) == 't0."a" IS NOT \'x\''
        assert predicate.render(DUCKDB) == 't0."a" IS DISTINCT FROM \'x\''

    def test_is_null_is_portable(self):
        assert IsNull(Col("t0", "a")).render(SQLITE) == 't0."a" IS NULL'
        assert IsNull(Col("t0", "a")).render(DUCKDB) == 't0."a" IS NULL'
        assert (
            IsNull(Col("t0", "a"), negated=True).render(DUCKDB)
            == 't0."a" IS NOT NULL'
        )


class TestStatements:
    def _select(self):
        return Select(
            items=(SelectItem(Col("t0", "a"), "x"),),
            froms=(TableRef("R", "t0"),),
            where=(Cmp("=", Col("t0", "b"), Lit("only")),),
            distinct=True,
        )

    def test_select_rendering(self):
        sql = self._select().render(SQLITE)
        assert sql == (
            'SELECT DISTINCT t0."a" AS "x" FROM "R" t0 WHERE t0."b" = \'only\''
        )

    def test_insert_with_except_dedup(self):
        sql = InsertSelect("T", self._select()).render(SQLITE)
        assert sql.startswith('INSERT INTO "T" SELECT DISTINCT')
        assert sql.endswith('EXCEPT SELECT * FROM "T"')

    def test_insert_without_dedup(self):
        sql = InsertSelect("T", self._select(), dedup=None).render(SQLITE)
        assert "EXCEPT" not in sql

    def test_create_table(self):
        statement = CreateTable("tmp", (("c0", "TEXT"), ("c1", "TEXT")))
        assert statement.render(SQLITE) == (
            'CREATE TABLE "tmp" ("c0" TEXT, "c1" TEXT)'
        )

    def test_not_exists(self):
        subquery = Select(
            items=(SelectItem(Lit(1)),),
            froms=(TableRef("N", "n"),),
            where=(NullSafeEq(Col("n", "c0"), Col("t0", "a")),),
        )
        sql = NotExists(subquery).render(SQLITE)
        assert sql.startswith("NOT EXISTS (SELECT 1 FROM")

    def test_rendering_is_deterministic(self):
        select = self._select()
        assert {select.render(SQLITE) for _ in range(10)} == {
            select.render(SQLITE)
        }


class TestSkolemEncode:
    def test_match_roundtrip(self):
        expr = skolem_encode("f", [Col("t0", "a"), Col("t1", "b")])
        matched = match_skolem_encode(expr)
        assert matched is not None
        functor, args = matched
        assert functor == "f"
        assert args == (Col("t0", "a"), Col("t1", "b"))

    def test_match_zero_arity(self):
        expr = skolem_encode("f", [])
        assert match_skolem_encode(expr) == ("f", ())

    def test_match_nested(self):
        inner = skolem_encode("g", [Col("t0", "a")])
        expr = skolem_encode("f", [inner])
        matched = match_skolem_encode(expr)
        assert matched is not None
        assert matched[0] == "f"
        assert match_skolem_encode(matched[1][0]) == ("g", (Col("t0", "a"),))

    def test_ambiguous_concat_not_matched(self):
        # The legacy bare-separator encoding: looks like an encoding but
        # does not match the canonical shape (what SQL003 flags).
        from repro.sqlgen.ast import Cast, Concat, IfNull

        legacy = Concat(
            (
                Lit("\x02f("),
                IfNull(Cast(Col("t0", "a"), "TEXT"), Lit("null")),
                Lit(","),
                IfNull(Cast(Col("t0", "b"), "TEXT"), Lit("null")),
                Lit(")"),
            )
        )
        assert looks_like_skolem_encoding(legacy)
        assert match_skolem_encode(legacy) is None

    def test_plain_expressions_do_not_look_like_encodings(self):
        assert not looks_like_skolem_encoding(Col("t0", "a"))
        assert not looks_like_skolem_encoding(Lit("plain"))

    def test_sql_encoding_agrees_with_value_encoding(self):
        # The expression skolem_encode emits must compute exactly what
        # values.encode_value produces for the same labeled null.
        import sqlite3

        expr = skolem_encode("f", [Lit("x,y"), Lit("z")])
        computed = sqlite3.connect(":memory:").execute(
            f"SELECT {expr.render(SQLITE)}"
        ).fetchone()[0]
        assert computed == encode_value(LabeledNull("f", ("x,y", "z")))

    def test_sql_encoding_of_null_argument(self):
        import sqlite3

        expr = skolem_encode("f", [NullLit()])
        computed = sqlite3.connect(":memory:").execute(
            f"SELECT {expr.render(SQLITE)}"
        ).fetchone()[0]
        assert computed == encode_value(LabeledNull("f", (NULL,)))


class TestEncodingCollisions:
    def test_separator_in_value_does_not_collide(self):
        # The historical defect: f("x,y") and f("x","y") encoded alike.
        one = encode_value(LabeledNull("f", ("x,y",)))
        two = encode_value(LabeledNull("f", ("x", "y")))
        assert one != two
        assert decode_value(one) == LabeledNull("f", ("x,y",))
        assert decode_value(two) == LabeledNull("f", ("x", "y"))

    def test_parenthesis_values_roundtrip(self):
        value = LabeledNull("f", ("a(b", ")c("))
        assert decode_value(encode_value(value)) == value

    def test_null_literal_string_distinct_from_null(self):
        spelled = LabeledNull("f", ("null",))
        real = LabeledNull("f", (NULL,))
        assert encode_value(spelled) != encode_value(real)
        assert decode_value(encode_value(spelled)) == spelled
        assert decode_value(encode_value(real)) == real

    def test_length_prefix_shaped_values_roundtrip(self):
        value = LabeledNull("f", ("3:abc", "12"))
        assert decode_value(encode_value(value)) == value
