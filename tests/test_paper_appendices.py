"""Integration tests for the appendix examples (A, B and C)."""

import pytest

from repro.core.pipeline import MappingSystem
from repro.core.query_generation import generate_queries, rewrite_to_unitary
from repro.core.schema_mapping import generate_schema_mapping
from repro.core.skolem import (
    ALL_SOURCE_OR_KEY_VARS,
    ALL_SOURCE_VARS,
    SOURCE_AND_RHS_VARS,
    SOURCE_HERE_AND_REF_VARS,
    skolemize_schema_mapping,
)
from repro.datalog.engine import evaluate
from repro.exchange.instance_chase import canonical_universal_solution
from repro.exchange.metrics import measure_instance
from repro.exchange.solutions import is_homomorphic_to, is_universal_solution
from repro.logic.terms import NULL_TERM, SkolemTerm
from repro.model.values import NULL, is_labeled_null
from repro.scenarios.appendix_a import ALL_EXAMPLES
from repro.scenarios.appendix_b import ALL_SCENARIOS
from repro.scenarios.appendix_c import example_c4_problem
from repro.model.instance import instance_from_dict


class TestAppendixA:
    """The desired transformations of Examples A.1–A.10."""

    def _run(self, name, data):
        problem = ALL_EXAMPLES[name]()
        system = MappingSystem(problem)
        source = instance_from_dict(problem.source_schema, data)
        return system, system.transform(source)

    def test_a1_straight_copy(self):
        _, output = self._run("A.1", {"Ps": [("p1", "n1", "e1")]})
        assert set(output.relation("Pt").rows) == {("p1", "n1", "e1")}

    def test_a2_invented_key(self):
        _, output = self._run("A.2", {"Ps": [("p1", "n1", "e1")]})
        [(pid, name, email)] = output.relation("Pt").rows
        assert is_labeled_null(pid)
        assert (name, email) == ("n1", "e1")

    def test_a3_invented_mandatory_email(self):
        _, output = self._run("A.3", {"Ps": [("p1", "n1")]})
        [(_, _, email)] = output.relation("Pt").rows
        assert is_labeled_null(email)

    def test_a4_null_for_nullable_email(self):
        # "assigning a null value is the best policy" — not a Skolem.
        _, output = self._run("A.4", {"Ps": [("p1", "n1")]})
        assert set(output.relation("Pt").rows) == {("p1", "n1", NULL)}

    def test_a5_invented_fk_and_data_tuple(self):
        _, output = self._run("A.5", {"Ps": [("p1", "n1", "e1")]})
        [(person, data)] = output.relation("Pt").rows
        assert person == "p1" and is_labeled_null(data)
        [(data2, name, email)] = output.relation("PDt").rows
        assert data2 == data and (name, email) == ("n1", "e1")

    def test_a6_null_fk_no_useless_tuple(self):
        _, output = self._run("A.6", {"Ps": [("p1", "n1")]})
        assert set(output.relation("Pt").rows) == {("p1", NULL)}
        assert len(output.relation("PDt")) == 0

    def test_a7_null_emails_get_invented_values(self):
        _, output = self._run(
            "A.7", {"Ps": [("p1", "n1", "e1"), ("p2", "n2", NULL)]}
        )
        rows = {row[0]: row for row in output.relation("Pt")}
        assert rows["p1"][2] == "e1"
        assert is_labeled_null(rows["p2"][2])

    def test_a8_no_null_propagation_needed(self):
        _, output = self._run("A.8", {"Ps": [("p1", "n1", "e1")]})
        assert set(output.relation("Pt").rows) == {("p1", "n1", "e1")}

    def test_a9_polarity_preserved(self):
        _, output = self._run(
            "A.9", {"Ps": [("p1", "n1", "e1"), ("p2", "n2", NULL)]}
        )
        assert set(output.relation("Pt").rows) == {
            ("p1", "n1", "e1"),
            ("p2", "n2", NULL),
        }

    def test_a10_both_polarities_copied(self):
        _, output = self._run(
            "A.10", {"Ps": [("p1", "n1", "e1"), ("p2", "n2", NULL)]}
        )
        assert set(output.relation("Pt").rows) == {("p1", "n1"), ("p2", "n2")}

    @pytest.mark.parametrize("name", sorted(ALL_EXAMPLES))
    def test_outputs_satisfy_target_constraints(self, name):
        from repro.model.validation import validate_instance

        problem = ALL_EXAMPLES[name]()
        system = MappingSystem(problem)
        ps = problem.source_schema.relation("Ps")
        rows = [("p1", "n1", "e1")[: ps.arity], ("p2", "n2", "e2")[: ps.arity]]
        if ps.has_attribute("email") and ps.is_nullable("email"):
            rows.append(("p3", "n3", NULL))
        source = instance_from_dict(problem.source_schema, {"Ps": rows})
        assert validate_instance(source).ok  # valid input data
        assert validate_instance(system.transform(source)).ok


def _evaluate_b(scenario, strategy):
    """Appendix B studies skolemization in isolation: build the program from
    the skolemized unitary mappings directly, without the novel algorithm's
    functionality check and key-conflict resolution (which would rightly
    reject, e.g., All-Source-Vars on B.4)."""
    from repro.core.query_generation import build_program

    skolemized = skolemize_schema_mapping(
        list(scenario.schema_mapping), scenario.target_schema, strategy=strategy
    )
    program = build_program(
        rewrite_to_unitary(skolemized),
        scenario.source_schema,
        scenario.target_schema,
    )
    return evaluate(program, scenario.source_instance).target


class TestAppendixB:
    """Per-strategy target instances for B.1–B.5 (sizes and universality)."""

    def test_b1_sizes(self):
        scenario = ALL_SCENARIOS["B.1"]()
        assert len(_evaluate_b(scenario, ALL_SOURCE_VARS).relation("Studentt")) == 4
        assert len(_evaluate_b(scenario, SOURCE_AND_RHS_VARS).relation("Studentt")) == 3
        assert len(_evaluate_b(scenario, ALL_SOURCE_OR_KEY_VARS).relation("Studentt")) == 4
        assert len(_evaluate_b(scenario, SOURCE_HERE_AND_REF_VARS).relation("Studentt")) == 3

    def test_b1_universality(self):
        scenario = ALL_SCENARIOS["B.1"]()
        canonical = canonical_universal_solution(
            scenario.schema_mapping, scenario.source_instance
        )
        for strategy in (ALL_SOURCE_VARS, SOURCE_AND_RHS_VARS):
            output = _evaluate_b(scenario, strategy)
            assert is_universal_solution(output, canonical), strategy

    def test_b2_sizes(self):
        scenario = ALL_SCENARIOS["B.2"]()
        assert len(_evaluate_b(scenario, ALL_SOURCE_VARS).relation("Studentt")) == 4
        assert len(_evaluate_b(scenario, SOURCE_AND_RHS_VARS).relation("Studentt")) == 2

    def test_b3_schoolt_per_strategy(self):
        scenario = ALL_SCENARIOS["B.3"]()
        # All-Source-Vars: one school per student tuple (universal).
        assert len(_evaluate_b(scenario, ALL_SOURCE_VARS).relation("Schoolt")) == 4
        # Source-Here-and-Ref-Vars: one school per school *name* — NOT
        # universal (the paper's key observation in B.3).
        shr = _evaluate_b(scenario, SOURCE_HERE_AND_REF_VARS)
        assert len(shr.relation("Schoolt")) == 2
        canonical = canonical_universal_solution(
            scenario.schema_mapping, scenario.source_instance
        )
        assert not is_universal_solution(shr, canonical)
        assert is_universal_solution(
            _evaluate_b(scenario, ALL_SOURCE_VARS), canonical
        )

    def test_b4_functionality_gap(self):
        # All-Source-Vars invents a city per *student* -> key violation on
        # Schoolt; All-Source-Or-Key-Vars invents per school -> functional.
        scenario = ALL_SCENARIOS["B.4"]()
        wide = _evaluate_b(scenario, ALL_SOURCE_VARS)
        assert measure_instance(wide).key_violations > 0
        tight = _evaluate_b(scenario, ALL_SOURCE_OR_KEY_VARS)
        metrics = measure_instance(tight)
        assert metrics.key_violations == 0
        assert len(tight.relation("Schoolt")) == 2

    def test_b5_sizes(self):
        scenario = ALL_SCENARIOS["B.5"]()
        assert len(_evaluate_b(scenario, ALL_SOURCE_OR_KEY_VARS).relation("Schoolt")) == 4
        assert len(_evaluate_b(scenario, SOURCE_HERE_AND_REF_VARS).relation("Schoolt")) == 2

    def test_all_source_or_key_always_universal_and_functional(self):
        # Appendix B's conclusion, checked on every scenario.
        for name, factory in ALL_SCENARIOS.items():
            scenario = factory()
            output = _evaluate_b(scenario, ALL_SOURCE_OR_KEY_VARS)
            canonical = canonical_universal_solution(
                scenario.schema_mapping, scenario.source_instance
            )
            assert is_homomorphic_to(output, canonical), name
            assert measure_instance(output).key_violations == 0, name


class TestExampleC4Transformation:
    def test_winner_takes_all_per_key(self):
        problem = example_c4_problem()
        system = MappingSystem(problem)
        source = instance_from_dict(
            problem.source_schema,
            {
                "S1": [("k1", "a1", "b1", "c1"), ("k3", "a3", "b3", "c3")],
                "S2": [("k1", "a2", "b2", "c2"), ("k2", "aa", "bb", "cc")],
                "S3": [("k1", "ax", "bx", "cx")],
            },
        )
        output = system.transform(source)
        rows = {row[0]: row for row in output.relation("T")}
        assert len(rows) == 3
        # k1 appears in all three sources: the triple fusion applies.
        assert rows["k1"] == ("k1", "a1", "b2", "cx")
        # k2 only in S2: a invented, b copied, c null.
        assert is_labeled_null(rows["k2"][1])
        assert rows["k2"][2] == "bb"
        assert rows["k2"][3] is NULL
        # k3 only in S1: a copied, b invented, c null.
        assert rows["k3"][1] == "a3"
        assert is_labeled_null(rows["k3"][2])

    def test_no_key_violations_ever(self):
        from repro.model.validation import validate_instance

        problem = example_c4_problem()
        system = MappingSystem(problem)
        source = instance_from_dict(
            problem.source_schema,
            {
                "S1": [(f"k{i}", f"a{i}", f"b{i}", f"c{i}") for i in range(6)],
                "S2": [(f"k{i}", f"x{i}", f"y{i}", f"z{i}") for i in range(3, 9)],
                "S3": [(f"k{i}", f"q{i}", f"r{i}", f"s{i}") for i in range(0, 9, 2)],
            },
        )
        output = system.transform(source)
        assert validate_instance(output).ok
        assert len(output.relation("T")) == 9
