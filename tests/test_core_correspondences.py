"""Tests for attribute and referenced-attribute correspondences."""

import pytest

from repro.core.correspondences import (
    Correspondence,
    ReferencedAttribute,
    correspondence,
    correspondences,
    parse_referenced_attribute,
)
from repro.errors import CorrespondenceError


class TestParsing:
    def test_plain_attribute(self):
        ref = parse_referenced_attribute("P3.name")
        assert ref.steps == (("P3", "name"),)
        assert ref.is_plain
        assert ref.relation == "P3"
        assert ref.attribute == "name"

    def test_referenced_attribute(self):
        ref = parse_referenced_attribute("O3.person > P3.name")
        assert ref.steps == (("O3", "person"), ("P3", "name"))
        assert not ref.is_plain
        assert ref.relation == "P3"
        assert ref.attribute == "name"

    def test_long_path(self):
        ref = parse_referenced_attribute("A.x > B.y > C.z")
        assert len(ref.steps) == 3

    def test_whitespace_tolerated(self):
        ref = parse_referenced_attribute("  O3.person  >  P3.name ")
        assert ref.steps == (("O3", "person"), ("P3", "name"))

    def test_missing_dot_rejected(self):
        with pytest.raises(CorrespondenceError):
            parse_referenced_attribute("person")

    def test_double_dot_rejected(self):
        with pytest.raises(CorrespondenceError):
            parse_referenced_attribute("a.b.c")

    def test_empty_step_rejected(self):
        with pytest.raises(CorrespondenceError):
            parse_referenced_attribute("O3. > P3.name")

    def test_empty_steps_rejected(self):
        with pytest.raises(CorrespondenceError):
            ReferencedAttribute(())


class TestValidation:
    def test_valid_plain(self, cars3, cars2):
        correspondence("P3.name", "P2.name").validate(cars3, cars2)

    def test_valid_referenced(self, cars3):
        from repro.scenarios.cars import cars1_schema

        correspondence("O3.person > P3.name", "C1.name").validate(
            cars3, cars1_schema()
        )

    def test_unknown_relation(self, cars3, cars2):
        with pytest.raises(CorrespondenceError):
            correspondence("X.name", "P2.name").validate(cars3, cars2)

    def test_unknown_attribute(self, cars3, cars2):
        with pytest.raises(CorrespondenceError):
            correspondence("P3.ghost", "P2.name").validate(cars3, cars2)

    def test_path_must_follow_foreign_key(self, cars3, cars2):
        # P3.name is not a foreign key, so it cannot be traversed.
        with pytest.raises(CorrespondenceError):
            correspondence("P3.name > C3.model", "P2.name").validate(cars3, cars2)

    def test_path_must_reach_declared_target(self, cars3, cars2):
        # O3.person references P3, not C3.
        with pytest.raises(CorrespondenceError):
            correspondence("O3.person > C3.model", "P2.name").validate(cars3, cars2)


class TestHelpers:
    def test_correspondences_builder(self):
        built = correspondences(
            ("P3.name", "P2.name"),
            ("P3.email", "P2.email", "p3"),
        )
        assert len(built) == 2
        assert built[0].label == ""
        assert built[1].label == "p3"

    def test_is_plain(self):
        assert correspondence("A.x", "B.y").is_plain
        assert not correspondence("A.x > B.y", "C.z").is_plain

    def test_repr_contains_label(self):
        c = correspondence("A.x", "B.y", "cn'")
        assert "cn'" in repr(c)
        assert "A.x" in repr(c)
