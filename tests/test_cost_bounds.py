"""Units for the static cost & cardinality certifier.

Covers the polynomial algebra, the fact base, the abstract interpreter
over rule pipelines, the join-order advisor, the PLN diagnostics, the
``cost.*`` metric family, and the ``MappingSystem.cost_report`` /
``repro plan --cost`` / ``repro lint --cost`` surfaces.  Soundness
against measured row counts lives in ``test_cost_calibration.py``.
"""

import json

import pytest

from repro.analysis.cost import (
    CALIBRATION_SIZE,
    CostFacts,
    JoinOrderAdvisor,
    ONE,
    Polynomial,
    UNBOUNDED,
    ZERO,
    analyze_cost,
    tighter,
)
from repro.analysis.diagnostics import CODES, ERROR, INFO, WARNING
from repro.cli import main
from repro.core.pipeline import MappingSystem
from repro.datalog.exec.plan import plan_program, plan_rule
from repro.datalog.program import DatalogProgram, Rule
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import Variable
from repro.model.schema import Attribute, RelationSchema, Schema
from repro.obs import MetricsRegistry, use_metrics
from repro.scenarios import bundled_problems

SCENARIOS = sorted(bundled_problems())


# -- the polynomial algebra ----------------------------------------------


class TestPolynomial:
    def test_constructors_and_render(self):
        assert ZERO.render() == "0"
        assert ONE.render() == "1"
        assert Polynomial.var("R").render() == "|R|"
        assert (Polynomial.var("R") * Polynomial.var("R")).render() == "|R|^2"

    def test_add_and_mul(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        assert (r + s).render() == "|R| + |S|"
        assert (r * s).render() == "|R|*|S|"
        assert ((r + ONE) * s).render() == "|S| + |R|*|S|"
        assert (r + r).render() == "2*|R|"

    def test_identities(self):
        r = Polynomial.var("R")
        assert (r + ZERO) == r
        assert (r * ONE) == r
        assert (r * ZERO).is_zero

    def test_render_orders_by_degree_then_monomial(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        poly = r * r + s + Polynomial.const(3) + r * s
        assert poly.render() == "3 + |S| + |R|*|S| + |R|^2"

    def test_evaluate(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        poly = r * s + Polynomial.const(2) * r + ONE
        assert poly.evaluate({"R": 10, "S": 5}) == 50 + 20 + 1
        assert poly.evaluate({}) == 1  # missing sizes default to 0

    def test_degree_and_variables(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        assert ZERO.degree() == 0 and ONE.degree() == 0
        assert (r * s * s).degree() == 3
        assert (r + s).variables() == {"R", "S"}

    def test_sup_is_coefficientwise_max(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        two_r = Polynomial.const(2) * r
        assert (two_r + s).sup(r + s) == two_r + s

    def test_dominates_is_sound_and_partial(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        assert (r + s).dominates(r)
        assert not r.dominates(r + s)
        # Incomparable coefficient-wise: neither dominates.
        assert not r.dominates(s)
        assert not s.dominates(r)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.const(-1)

    def test_substitute_expands_intermediates(self):
        tmp = Polynomial.var("TMP")
        r, s = Polynomial.var("R"), Polynomial.var("S")
        assert (tmp * s).substitute({"TMP": r + s}) == r * s + s * s

    def test_unbounded_is_a_singleton_and_renders(self):
        assert UNBOUNDED.render() == "unbounded"
        assert type(UNBOUNDED)() is UNBOUNDED

    def test_tighter_prefers_smaller_calibrated_value(self):
        r, s = Polynomial.var("R"), Polynomial.var("S")
        assert tighter(r * s, r) == r
        assert tighter(r, r * s) == r
        # Equal at the calibration point: deterministic tie-break.
        assert tighter(r, s) is tighter(r, s)
        assert CALIBRATION_SIZE == 1000


# -- a tiny hand-built program for planner/diagnostic cases --------------


def _two_source_schema() -> Schema:
    return Schema(
        [
            RelationSchema("R", [Attribute("a"), Attribute("b")], key="a"),
            RelationSchema("S", [Attribute("c"), Attribute("a")], key="c"),
        ],
        name="s",
    )


def _target_schema() -> Schema:
    return Schema(
        [
            RelationSchema(
                "T", [Attribute("a"), Attribute("b"), Attribute("c")], key="a"
            )
        ],
        name="t",
    )


def _keyed_join_program() -> DatalogProgram:
    """T(x, y, z) <- R(x, y), S(z, x): S-first walks R's key."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    rule = Rule(
        head=RelationalAtom("T", (x, y, z)),
        body=(RelationalAtom("R", (x, y)), RelationalAtom("S", (z, x))),
    )
    return DatalogProgram(
        rules=[rule],
        source_schema=_two_source_schema(),
        target_schema=_target_schema(),
    )


def _cross_product_program() -> DatalogProgram:
    """T(x, y, z) <- R(x, y), S(z, w): no shared variable, cross product."""
    x, y, z, w = (Variable(n) for n in "xyzw")
    rule = Rule(
        head=RelationalAtom("T", (x, y, z)),
        body=(RelationalAtom("R", (x, y)), RelationalAtom("S", (z, w))),
    )
    return DatalogProgram(
        rules=[rule],
        source_schema=_two_source_schema(),
        target_schema=_target_schema(),
    )


# -- the join-order advisor ----------------------------------------------


class TestAdvisor:
    def test_advisor_walks_the_key(self):
        program = _keyed_join_program()
        advisor = JoinOrderAdvisor.for_program(program)
        order = advisor.order(program.rules[0].body)
        # S first (|S| rows), then R probed on its full key (fan-out 1).
        assert order == [1, 0]

    def test_greedy_without_stats_keeps_input_order(self):
        program = _keyed_join_program()
        plan = plan_rule(program.rules[0], None)
        assert plan.scan.relation == "R"  # greedy: sizes tie, index order

    def test_static_plan_uses_the_advised_order(self):
        program = _keyed_join_program()
        plan = plan_program(program)
        (rule_plan,) = plan.plans["T"]
        assert rule_plan.scan.relation == "S"
        assert [join.relation for join in rule_plan.joins] == ["R"]

    def test_live_stats_override_the_advisor(self):
        program = _keyed_join_program()
        plan = plan_program(program, stats={"R": 1, "S": 50})
        (rule_plan,) = plan.plans["T"]
        assert rule_plan.scan.relation == "R"  # smallest relation first

    def test_cost_advice_can_be_disabled(self):
        program = _keyed_join_program()
        plan = plan_program(program, cost_advice=False)
        (rule_plan,) = plan.plans["T"]
        assert rule_plan.scan.relation == "R"

    def test_single_atom_and_wide_bodies_fall_back(self):
        program = _keyed_join_program()
        advisor = JoinOrderAdvisor.for_program(program)
        atom = RelationalAtom("R", (Variable("x"), Variable("y")))
        assert advisor.order((atom,)) is None
        wide = tuple(
            RelationalAtom("R", (Variable(f"x{i}"), Variable(f"y{i}")))
            for i in range(7)
        )
        assert advisor.order(wide) is None


# -- the fact base -------------------------------------------------------


class TestCostFacts:
    def test_schema_only_facts(self):
        program = _keyed_join_program()
        facts = CostFacts.for_program(program)
        assert facts.key_sets("R") == ((0,),)
        assert facts.key_sets("S") == ((0,),)
        assert facts.covers_key("R", {0, 1}) and not facts.covers_key("R", {1})
        # Key attributes are never nullable.
        assert facts.never_null("R", 0)
        assert facts.head_keys["T"] == (0,)
        # No certifier report: the head key is declared, not proved.
        assert "T" not in facts.proved_key_relations
        assert facts.chase_depth_bound == 0

    def test_full_facts_from_certifier_and_flow(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        facts = CostFacts.for_program(
            system.transformation,
            certification=system.certify(),
            flow=system.flow_report(),
        )
        # All bundled scenarios certify: every target key is PROVED.
        assert facts.proved_key_relations
        for name in facts.proved_key_relations:
            assert facts.key_sets(name)
        assert facts.functional_rules
        assert facts.nullability  # solved fixpoint values for defined rels
        assert facts.foreign_keys  # source FKs at least


# -- bounds and diagnostics ----------------------------------------------


class TestAnalyzeCost:
    def test_keyed_join_is_linear(self):
        program = _keyed_join_program()
        report = analyze_cost(program, subject="keyed")
        assert report.bounded and report.ok
        assert report.relation_bound("T").render() == "|S|"
        (rule,) = report.rule_bounds()
        assert not rule.cross_product
        assert rule.degree() == 1
        notes = [op.note for op in rule.operators]
        assert any("probe covers a key of R" in note for note in notes)

    def test_cross_product_raises_pln001_and_pln002(self):
        program = _cross_product_program()
        report = analyze_cost(program, subject="cross")
        assert report.relation_bound("T").render() == "|R|*|S|"
        codes = {finding.code for finding in report.findings}
        assert codes == {"PLN001", "PLN002"}
        assert all(
            finding.severity == WARNING for finding in report.findings
        )
        assert report.ok  # warnings only
        (rule,) = report.rule_bounds()
        assert rule.cross_product and rule.degree() == 2

    def test_unbounded_depth_raises_pln003(self):
        program = _keyed_join_program()
        report = analyze_cost(
            program, subject="loop", facts=CostFacts(chase_depth_bound=None)
        )
        assert not report.bounded
        assert report.max_degree() is None
        assert report.relation_bound("T") is UNBOUNDED
        (finding,) = report.findings
        assert finding.code == "PLN003" and finding.severity == ERROR
        assert not report.ok
        assert "unbounded" in report.render()

    def test_pln004_reports_dominated_greedy_order(self):
        program = _keyed_join_program()
        report = analyze_cost(program, subject="advice")
        codes = {finding.code for finding in report.findings}
        assert "PLN004" in codes
        (finding,) = [f for f in report.findings if f.code == "PLN004"]
        assert finding.severity == INFO
        assert "cost-advised" in finding.message

    def test_pln_codes_are_registered(self):
        assert CODES["PLN001"].severity == WARNING
        assert CODES["PLN002"].severity == WARNING
        assert CODES["PLN003"].severity == ERROR
        assert CODES["PLN004"].severity == INFO

    def test_report_to_dict_shape(self):
        report = analyze_cost(_keyed_join_program(), subject="keyed")
        data = report.to_dict()
        assert data["subject"] == "keyed"
        assert data["bounded"] is True
        assert data["max_degree"] == 1
        (relation,) = data["relations"]
        assert relation["relation"] == "T"
        assert relation["bound"] == "|S|"
        (rule,) = relation["rules"]
        assert [op["kind"] for op in rule["operators"]] == [
            "scan",
            "join",
            "project",
        ]

    def test_diagnostics_is_an_analysis_report(self):
        report = analyze_cost(_cross_product_program(), subject="cross")
        analysis = report.diagnostics()
        assert analysis.subject == "cross"
        assert analysis.by_code() == {"PLN001": 1, "PLN002": 1}

    def test_cost_metrics_family(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            analyze_cost(_cross_product_program(), subject="cross")
        assert registry.counter("cost.runs").value(bounded="true") == 1
        assert registry.counter("cost.relations").value() == 1
        assert registry.counter("cost.rules").value() == 1
        assert registry.counter("cost.diagnostics").value(code="PLN001") == 1
        assert registry.gauge("cost.max_degree").value(subject="cross") == 2

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_every_bundled_scenario_is_linear_and_clean(self, name):
        """Paper scenarios: linear bounds, no PLN findings (the CI gate)."""
        system = MappingSystem(bundled_problems()[name])
        report = analyze_cost(system.transformation, subject=name)
        assert report.bounded
        assert report.max_degree() == 1
        assert not report.findings

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_scenarios_are_bounded(self, seed):
        """Seeded weakly acyclic scenarios never trip the cost gate."""
        from repro.scenarios.generator import generate_scenario

        scenario = generate_scenario(seed)
        system = MappingSystem(scenario.problem)
        report = analyze_cost(system.transformation, subject=scenario.name)
        assert report.bounded

    def test_derived_bounds_mention_source_sizes_only(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        report = analyze_cost(system.transformation, subject="figure-1")
        sources = set(
            system.problem.source_schema.relation_names()
        )
        for cost in report.relations:
            assert cost.bound.variables() <= sources


# -- the MappingSystem and CLI surfaces ----------------------------------


class TestSurfaces:
    def test_cost_report_is_cached_and_uses_full_facts(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        report = system.cost_report()
        assert report is system.cost_report()
        assert report.subject == "figure-1"
        assert report.bounded and report.ok

    def test_cost_report_invalidated_on_problem_mutation(self):
        system = MappingSystem(bundled_problems()["figure-1"])
        report = system.cost_report()
        # A freshly built problem carries new correspondence objects, so
        # the fingerprint check must drop the cached report.
        system.problem = bundled_problems()["figure-1"]
        assert system.cost_report() is not report

    def test_cli_plan_cost_text(self, capsys):
        assert main(["plan", "--scenario", "figure-1", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "cost report for figure-1" in out
        assert "chase-depth bound: 0" in out
        assert "|C3| + |O3|" in out

    def test_cli_plan_cost_json_all_scenarios(self, capsys):
        assert main(["plan", "--all-scenarios", "--cost", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == len(SCENARIOS)
        assert all(entry["cost"]["bounded"] for entry in payload)
        assert all(entry["cost"]["max_degree"] == 1 for entry in payload)

    def test_cli_plan_all_scenarios_without_cost(self, capsys):
        assert main(["plan", "--all-scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == len(SCENARIOS)
        assert all("strata" in entry for entry in payload)

    def test_cli_plan_analyze_rejects_all_scenarios(self, capsys):
        assert main(["plan", "--all-scenarios", "--analyze"]) == 2

    def test_cli_lint_cost_clean_and_sarif(self, tmp_path, capsys):
        sarif_path = tmp_path / "cost.sarif"
        code = main(
            [
                "lint",
                "--scenario",
                "figure-1",
                "--cost",
                "--sarif-out",
                str(sarif_path),
            ]
        )
        assert code == 0
        log = json.loads(sarif_path.read_text())
        rules = {
            rule["id"]
            for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"PLN001", "PLN002", "PLN003", "PLN004"} <= rules
        assert log["runs"][0]["results"] == []
