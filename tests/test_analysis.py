"""Tests for the static analyzer: diagnostics framework, linters, SARIF."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    SourceSpan,
    analyze,
    diagnostic,
    lint_program,
    lint_schema,
    quick_lint,
    severity_at_least,
    to_sarif,
)
from repro.cli import main
from repro.core.correspondences import correspondence
from repro.core.pipeline import MappingProblem, MappingSystem
from repro.datalog.program import DatalogProgram, Rule
from repro.dsl.parser import parse_problem_lenient
from repro.errors import ReproError, SchemaError, WeakAcyclicityError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import NULL_TERM, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder
from repro.scenarios import bundled_problems

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _read(name):
    with open(os.path.join(FIXTURES, name)) as handle:
        return handle.read()


def V(name):
    return Variable(name)


# -- framework -------------------------------------------------------------


class TestDiagnosticsFramework:
    def test_severity_order(self):
        assert severity_at_least(ERROR, WARNING)
        assert severity_at_least(WARNING, WARNING)
        assert not severity_at_least(INFO, WARNING)

    def test_factory_defaults_from_registry(self):
        item = diagnostic("SCH010", "boom")
        assert item.severity == ERROR
        assert item.section == "§3.1"
        assert item.title == "weak-acyclicity violation"

    def test_factory_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            diagnostic("XXX999", "nope")

    def test_registry_codes_are_consistent(self):
        for code, info in CODES.items():
            assert info.code == code
            assert info.severity in (ERROR, WARNING, INFO)
            assert info.section.startswith("§")

    def test_render_includes_span_and_section(self):
        item = diagnostic(
            "SCH001", "dangling", span=SourceSpan(3, file="f.txt")
        )
        assert item.render() == "f.txt:3: SCH001 error: dangling [§3.1]"

    def test_report_queries(self):
        report = AnalysisReport()
        report.add(diagnostic("SCH001", "e1"))
        report.add(diagnostic("MAP001", "w1"))
        assert not report.ok
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert report.by_code() == {"MAP001": 1, "SCH001": 1}
        assert report.codes() == ["MAP001", "SCH001"]
        assert "1 error(s), 1 warning(s)" in report.summary()

    def test_span_not_part_of_equality(self):
        from repro.model.schema import Attribute, ForeignKey

        assert Attribute("a") == Attribute("a", span=SourceSpan(5))
        assert ForeignKey("R", "a", "S") == ForeignKey(
            "R", "a", "S", span=SourceSpan(9)
        )
        assert hash(Attribute("a")) == hash(Attribute("a", span=SourceSpan(5)))

    def test_diagnostic_counters_flow_through_tracer(self):
        from repro.obs import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            diagnostic("DLG001", "unsafe")
        assert tracer.counters == {"lint.DLG001": 1}


# -- schema lint -----------------------------------------------------------


def _schema_with(fks, relations=None, validate=False):
    builder = SchemaBuilder("s")
    for spec in relations or [("R", ("r", "a"), "r"), ("Q", ("q", "b"), "q")]:
        name, attrs, key = spec
        builder.relation(name, *attrs, key=key)
    for relation, attribute, referenced in fks:
        builder.foreign_key(relation, attribute, referenced)
    return builder.build(validate=validate)


class TestSchemaLint:
    def test_clean_schema(self, cars3):
        assert lint_schema(cars3) == []

    def test_sch001_unknown_relation_raises_with_diagnostic(self):
        with pytest.raises(SchemaError) as info:
            _schema_with([("R", "a", "Missing")])
        assert info.value.diagnostic is not None
        assert info.value.diagnostic.code == "SCH001"

    def test_sch002_composite_key_reference(self):
        with pytest.raises(SchemaError) as info:
            _schema_with(
                [("R", "a", "Q")],
                relations=[
                    ("R", ("r", "a"), "r"),
                    ("Q", ("q1", "q2"), ("q1", "q2")),
                ],
            )
        assert info.value.diagnostic.code == "SCH002"

    def test_sch003_duplicate_foreign_key(self):
        with pytest.raises(SchemaError) as info:
            _schema_with([("R", "a", "Q"), ("R", "a", "Q")])
        assert info.value.diagnostic.code == "SCH003"

    def test_sch010_weak_acyclicity(self):
        schema = _schema_with(
            [("R", "a", "Q"), ("Q", "b", "R")], validate=False
        )
        found = lint_schema(schema)
        assert [d.code for d in found] == ["SCH010"]
        assert "R.a" in found[0].message or "Q.b" in found[0].message
        with pytest.raises(WeakAcyclicityError) as info:
            schema.validate()
        assert info.value.diagnostic.code == "SCH010"


# -- datalog lint ----------------------------------------------------------


def _program(rules, **kwargs):
    return DatalogProgram(rules=list(rules), **kwargs)


class TestDatalogLint:
    def test_clean_program(self, figure1_problem):
        program = MappingSystem(figure1_problem).transformation
        assert lint_program(program) == []

    def test_dlg001_unsafe_rule(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x, y)), body=(RelationalAtom("S", (x,)),)
        )
        found = lint_program(_program([rule]))
        assert "DLG001" in [d.code for d in found]

    def test_dlg002_recursion_cycle_names_closing_rule(self):
        x = V("x")
        a_from_b = Rule(
            head=RelationalAtom("A", (x,)), body=(RelationalAtom("B", (x,)),)
        )
        b_from_a = Rule(
            head=RelationalAtom("B", (x,)), body=(RelationalAtom("A", (x,)),)
        )
        found = lint_program(_program([a_from_b, b_from_a]))
        cycles = [d for d in found if d.code == "DLG002"]
        assert len(cycles) == 1
        assert "closed by rule" in cycles[0].message

    def test_dlg003_dead_intermediate(self):
        x = V("x")
        tmp = Rule(head=RelationalAtom("Tmp", (x,)), body=(RelationalAtom("S", (x,)),))
        main = Rule(head=RelationalAtom("T", (x,)), body=(RelationalAtom("S", (x,)),))
        found = lint_program(_program([main, tmp], intermediates={"Tmp": 1}))
        assert [d.code for d in found] == ["DLG003"]
        assert found[0].severity == WARNING

    def test_dlg004_inconsistent_functor_arity(self):
        x, y = V("x"), V("y")
        one = Rule(
            head=RelationalAtom("T", (x, SkolemTerm("f", (x,)))),
            body=(RelationalAtom("S", (x, y)),),
        )
        two = Rule(
            head=RelationalAtom("T", (x, SkolemTerm("f", (x, y)))),
            body=(RelationalAtom("S", (x, y)),),
        )
        found = lint_program(_program([one, two]))
        assert [d.code for d in found] == ["DLG004"]

    def _null_flow_schemas(self):
        source = (
            SchemaBuilder("src").relation("S", "k", "v?", key="k").build()
        )
        target = (
            SchemaBuilder("tgt").relation("T", "k", "v", key="k").build()
        )
        return source, target

    def test_dlg010_maybe_null_flow_is_warning(self):
        source, target = self._null_flow_schemas()
        k, v = V("k"), V("v")
        rule = Rule(
            head=RelationalAtom("T", (k, v)), body=(RelationalAtom("S", (k, v)),)
        )
        found = lint_program(
            _program([rule], source_schema=source, target_schema=target)
        )
        assert [d.code for d in found] == ["DLG010"]
        assert found[0].severity == WARNING
        assert "T.v" in found[0].subject

    def test_dlg010_always_null_flow_is_error(self):
        source, target = self._null_flow_schemas()
        k = V("k")
        v = V("v")
        rule = Rule(
            head=RelationalAtom("T", (k, NULL_TERM)),
            body=(RelationalAtom("S", (k, v)),),
        )
        found = lint_program(
            _program([rule], source_schema=source, target_schema=target)
        )
        assert [d.code for d in found] == ["DLG010"]
        assert found[0].severity == ERROR

    def test_dlg010_nonnull_condition_silences(self):
        source, target = self._null_flow_schemas()
        k, v = V("k"), V("v")
        rule = Rule(
            head=RelationalAtom("T", (k, v)),
            body=(RelationalAtom("S", (k, v)),),
            nonnull_vars=(v,),
        )
        assert (
            lint_program(_program([rule], source_schema=source, target_schema=target))
            == []
        )

    def test_dlg010_tracks_nulls_through_tmp_relations(self):
        source, target = self._null_flow_schemas()
        k, v = V("k"), V("v")
        k2, v2 = V("k2"), V("v2")
        tmp = Rule(
            head=RelationalAtom("Tmp", (k, v)), body=(RelationalAtom("S", (k, v)),)
        )
        main = Rule(
            head=RelationalAtom("T", (k2, v2)),
            body=(RelationalAtom("Tmp", (k2, v2)),),
        )
        found = lint_program(
            _program(
                [main, tmp],
                source_schema=source,
                target_schema=target,
                intermediates={"Tmp": 2},
            )
        )
        dlg010 = [d for d in found if d.code == "DLG010"]
        assert len(dlg010) == 1

    def test_unsafe_rule_error_carries_diagnostic(self):
        x, y = V("x"), V("y")
        rule = Rule(
            head=RelationalAtom("T", (x, y)), body=(RelationalAtom("S", (x,)),)
        )
        from repro.errors import DatalogError

        with pytest.raises(DatalogError) as info:
            rule.check_safety()
        assert info.value.diagnostic.code == "DLG001"


# -- mapping lint / analyze ------------------------------------------------


class TestAnalyze:
    def test_all_bundled_scenarios_have_no_errors(self):
        for name, problem in bundled_problems().items():
            report = analyze(problem)
            assert report.ok, f"{name}: {report.render()}"

    def test_broken_schema_fixture_codes_and_spans(self):
        problem, parse_diags = parse_problem_lenient(
            _read("broken_schema.problem.txt"), file="broken_schema.problem.txt"
        )
        codes = sorted(d.code for d in parse_diags)
        assert codes == ["SCH001", "SCH002", "SCH010"]
        by_code = {d.code: d for d in parse_diags}
        assert by_code["SCH001"].span.line == 8
        assert by_code["SCH002"].span.line == 8
        assert by_code["SCH010"].span.line == 6
        assert all(
            d.span.file == "broken_schema.problem.txt" for d in parse_diags
        )

    def test_broken_mapping_fixture_codes(self):
        problem, parse_diags = parse_problem_lenient(
            _read("broken_mapping.problem.txt")
        )
        assert parse_diags == []
        report = analyze(problem)
        assert report.codes() == ["MAP001", "MAP002", "MAP003"]
        map001 = [d for d in report if d.code == "MAP001"]
        assert map001[0].severity == WARNING
        assert map001[0].span is not None and map001[0].span.line == 13

    def test_analyze_program_directly(self, figure1_problem):
        program = MappingSystem(figure1_problem).transformation
        assert analyze(program).ok

    def test_analyze_schema_directly(self, cars3):
        assert analyze(cars3).ok

    def test_analyze_rejects_other_types(self):
        with pytest.raises(TypeError):
            analyze(42)

    def test_map005_when_generation_fails(self, figure1_problem, monkeypatch):
        from repro.core import pipeline

        def boom(self):
            raise ReproError("synthetic failure")

        monkeypatch.setattr(
            pipeline.MappingSystem, "transformation", property(boom)
        )
        report = analyze(figure1_problem)
        assert "MAP005" in report.codes()
        assert "synthetic failure" in report.errors[0].message

    def test_carried_diagnostic_is_reused_over_map005(
        self, figure1_problem, monkeypatch
    ):
        from repro.core import pipeline

        carried = diagnostic("MAP002", "carried from the pipeline")

        def boom(self):
            raise ReproError("conflict", diagnostic=carried)

        monkeypatch.setattr(
            pipeline.MappingSystem, "transformation", property(boom)
        )
        report = analyze(figure1_problem)
        assert report.errors == [carried]


class TestQuickLintAndCompile:
    def test_compile_returns_program_and_keeps_report(self, figure1_problem):
        system = MappingSystem(figure1_problem)
        program = system.compile()
        assert len(program.rules) > 0
        assert system.lint_report is not None and system.lint_report.ok

    def test_compile_strict_raises_on_lint_error(self):
        source = SchemaBuilder("s").relation("S", "a", "b").build()
        target = SchemaBuilder("t").relation("T", "x", "y").build()
        problem = MappingProblem(source, target, name="bad")
        problem.add_correspondence("S.b", "T.y")
        system = MappingSystem(problem)
        # Sneak in an invalid correspondence after construction; compile's
        # quick lint must catch it before any pipeline stage runs.
        problem.correspondences.append(correspondence("S.zzz", "T.y"))
        with pytest.raises(ReproError) as info:
            system.compile()
        assert info.value.diagnostic.code == "MAP004"
        assert system.lint_report is not None
        assert not system.lint_report.ok

    def test_compile_strict_tolerates_warnings(self):
        problem = bundled_problems()["example-6-7"]
        system = MappingSystem(problem)
        system.compile()  # MAP001 is only a warning: strict still passes
        assert system.lint_report.warnings

    def test_compile_lint_counters_reach_stats(self):
        problem = bundled_problems()["example-6-7"]
        system = MappingSystem(problem, trace=True)
        system.compile()
        assert system.stats().counters.get("lint.MAP001", 0) >= 1

    def test_quick_lint_runs_no_pipeline_stage(self, figure1_problem):
        report = quick_lint(figure1_problem)
        assert report.ok


# -- SARIF -----------------------------------------------------------------


class TestSarif:
    def _report(self):
        report = AnalysisReport(subject="demo")
        report.add(
            diagnostic(
                "SCH001", "dangling", span=SourceSpan(3, column=7, file="p.txt")
            )
        )
        report.add(diagnostic("MAP001", "uncovered"))
        return report

    def test_structure(self):
        log = to_sarif(self._report())
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert set(CODES) == set(rule_ids)
        results = run["results"]
        assert results[0]["ruleId"] == "SCH001"
        assert results[0]["level"] == "error"
        location = results[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "p.txt"
        assert location["region"] == {"startLine": 3, "startColumn": 7}
        assert results[1]["level"] == "warning"
        assert "locations" not in results[1]

    def test_rule_index_points_at_rule(self):
        log = to_sarif(self._report())
        run = log["runs"][0]
        for result in run["results"]:
            index = result["ruleIndex"]
            assert run["tool"]["driver"]["rules"][index]["id"] == result["ruleId"]

    def test_validates_against_pinned_schema(self):
        from repro.obs.schema import validate

        schema_path = os.path.join(
            os.path.dirname(__file__), "..", "docs", "sarif_lint.schema.json"
        )
        with open(schema_path) as handle:
            schema = json.load(handle)
        validate(to_sarif(self._report()), schema)
        # An empty report is valid SARIF too.
        validate(to_sarif(AnalysisReport()), schema)


# -- CLI -------------------------------------------------------------------


class TestLintCli:
    BROKEN_SCHEMA = os.path.join(FIXTURES, "broken_schema.problem.txt")
    BROKEN_MAPPING = os.path.join(FIXTURES, "broken_mapping.problem.txt")

    def test_broken_schema_fixture_fails_with_codes(self, capsys):
        assert main(["lint", self.BROKEN_SCHEMA]) == 1
        out = capsys.readouterr().out
        for code in ("SCH001", "SCH002", "SCH010"):
            assert code in out
        assert f"{self.BROKEN_SCHEMA}:8" in out
        assert f"{self.BROKEN_SCHEMA}:6" in out

    def test_broken_mapping_fixture_fails_with_codes(self, capsys):
        assert main(["lint", self.BROKEN_MAPPING]) == 1
        out = capsys.readouterr().out
        for code in ("MAP001", "MAP002", "MAP003"):
            assert code in out
        assert "2 error(s), 1 warning(s)" in out

    def test_fail_on_never(self, capsys):
        assert main(["lint", self.BROKEN_SCHEMA, "--fail-on", "never"]) == 0
        capsys.readouterr()

    def test_clean_scenario_passes(self, capsys):
        assert main(["lint", "--scenario", "figure-1"]) == 0
        out = capsys.readouterr().out
        assert "# figure-1" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_fail_on_warning_promotes_warnings(self, capsys):
        assert main(["lint", "--scenario", "example-6-7"]) == 0
        assert (
            main(["lint", "--scenario", "example-6-7", "--fail-on", "warning"])
            == 1
        )
        capsys.readouterr()

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["lint", "--scenario", "no-such-thing"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_nothing_to_lint_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_sarif_format_on_stdout(self, capsys):
        assert main(
            ["lint", self.BROKEN_SCHEMA, "--format", "sarif", "--fail-on", "never"]
        ) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        codes = {r["ruleId"] for r in log["runs"][0]["results"]}
        assert {"SCH001", "SCH002", "SCH010"} <= codes

    def test_sarif_out_validates_against_pinned_schema(self, capsys, tmp_path):
        from repro.obs.schema import validate

        out_path = tmp_path / "lint.sarif"
        assert main(["lint", self.BROKEN_MAPPING, "--sarif-out", str(out_path)]) == 1
        capsys.readouterr()
        with open(
            os.path.join(os.path.dirname(__file__), "..", "docs",
                         "sarif_lint.schema.json")
        ) as handle:
            schema = json.load(handle)
        validate(json.loads(out_path.read_text()), schema)
