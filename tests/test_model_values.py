"""Tests for the value domain (null, labeled nulls, constants)."""

import pickle

from repro.model.values import (
    NULL,
    LabeledNull,
    NullValue,
    format_value,
    is_constant,
    is_labeled_null,
    is_null,
)


class TestNull:
    def test_singleton(self):
        assert NullValue() is NULL

    def test_equality_only_with_itself(self):
        assert NULL == NULL
        assert NULL != "null"
        assert NULL != 0
        assert NULL is not None

    def test_repr(self):
        assert repr(NULL) == "null"

    def test_pickle_preserves_singleton(self):
        assert pickle.loads(pickle.dumps(NULL)) is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null("x")
        assert not is_null(LabeledNull("f", ()))


class TestLabeledNull:
    def test_equality_by_functor_and_args(self):
        assert LabeledNull("f", ("a",)) == LabeledNull("f", ("a",))
        assert LabeledNull("f", ("a",)) != LabeledNull("f", ("b",))
        assert LabeledNull("f", ("a",)) != LabeledNull("g", ("a",))

    def test_hashable(self):
        values = {LabeledNull("f", ("a",)), LabeledNull("f", ("a",))}
        assert len(values) == 1

    def test_nested(self):
        inner = LabeledNull("g", ("x",))
        outer = LabeledNull("f", (inner,))
        assert outer.args[0] == inner
        assert repr(outer) == "f(g(x))"

    def test_repr_with_null_arg(self):
        assert repr(LabeledNull("f", (NULL,))) == "f(null)"

    def test_predicates(self):
        assert is_labeled_null(LabeledNull("f", ()))
        assert not is_labeled_null(NULL)
        assert not is_labeled_null("x")


class TestClassification:
    def test_is_constant(self):
        assert is_constant("x")
        assert is_constant(42)
        assert not is_constant(NULL)
        assert not is_constant(LabeledNull("f", ()))

    def test_format_value(self):
        assert format_value(NULL) == "null"
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"
        assert format_value(LabeledNull("f", ("a", "b"))) == "f(a,b)"
