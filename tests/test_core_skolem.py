"""Tests for the four skolemization strategies (Appendix B)."""

import pytest

from repro.core.skolem import (
    ALL_SOURCE_OR_KEY_VARS,
    ALL_SOURCE_VARS,
    SOURCE_AND_RHS_VARS,
    SOURCE_HERE_AND_REF_VARS,
    STRATEGIES,
    skolemize_mapping,
)
from repro.errors import QueryGenerationError
from repro.logic.terms import NULL_TERM, SkolemTerm, Variable
from repro.scenarios.appendix_b import ALL_SCENARIOS


def _skolemized_terms(scenario, strategy):
    mapping = scenario.schema_mapping.mappings[0]
    result = skolemize_mapping(
        mapping, scenario.target_schema, strategy, use_null_for_nullable=True
    )
    return result.consequent


def _arg_names(term: SkolemTerm):
    names = []
    for arg in term.args:
        if isinstance(arg, Variable):
            names.append(arg.name)
        elif isinstance(arg, SkolemTerm):
            names.append(repr(arg))
    return names


class TestExampleB1:
    """B.1: the key variable's functor arguments per strategy."""

    def test_all_source_vars(self):
        scenario = ALL_SCENARIOS["B.1"]()
        [atom] = _skolemized_terms(scenario, ALL_SOURCE_VARS)
        key = atom.terms[0]
        assert isinstance(key, SkolemTerm)
        assert _arg_names(key) == ["id", "n", "s"]

    def test_source_and_rhs_vars(self):
        scenario = ALL_SCENARIOS["B.1"]()
        [atom] = _skolemized_terms(scenario, SOURCE_AND_RHS_VARS)
        assert _arg_names(atom.terms[0]) == ["n", "s"]

    def test_all_source_or_key_vars(self):
        scenario = ALL_SCENARIOS["B.1"]()
        [atom] = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        assert _arg_names(atom.terms[0]) == ["id", "n", "s"]

    def test_source_here_and_ref_vars(self):
        scenario = ALL_SCENARIOS["B.1"]()
        [atom] = _skolemized_terms(scenario, SOURCE_HERE_AND_REF_VARS)
        assert _arg_names(atom.terms[0]) == ["n", "s"]


class TestExampleB2:
    """B.2: nested functors under All-Source-Or-Key-Vars."""

    def test_all_source_or_key_nests_email_under_key(self):
        scenario = ALL_SCENARIOS["B.2"]()
        [atom] = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        key, _name, email = atom.terms
        assert isinstance(key, SkolemTerm) and isinstance(email, SkolemTerm)
        assert email.args == (key,)  # f_email(f_key(...))

    def test_source_and_rhs_uses_name_only(self):
        scenario = ALL_SCENARIOS["B.2"]()
        [atom] = _skolemized_terms(scenario, SOURCE_AND_RHS_VARS)
        assert _arg_names(atom.terms[0]) == ["n"]
        assert _arg_names(atom.terms[2]) == ["n"]


class TestExampleB3:
    """B.3: a variable linking a foreign key to a referenced key."""

    def test_all_source_or_key_uses_referencing_atom_key(self):
        scenario = ALL_SCENARIOS["B.3"]()
        student, school = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        sid = student.terms[2]
        assert isinstance(sid, SkolemTerm)
        assert _arg_names(sid) == ["id"]  # f_sid(id), the paper's choice
        assert school.terms[0] == sid

    def test_source_here_and_ref_uses_key_atom(self):
        scenario = ALL_SCENARIOS["B.3"]()
        student, school = _skolemized_terms(scenario, SOURCE_HERE_AND_REF_VARS)
        sid = student.terms[2]
        assert _arg_names(sid) == ["sn"]  # f_sid(schoolname)


class TestExampleB4:
    """B.4: the city functor."""

    def test_all_source_or_key_uses_school_key(self):
        scenario = ALL_SCENARIOS["B.4"]()
        _student, school = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        city = school.terms[2]
        assert _arg_names(city) == ["sid"]  # f_city(sid): functional!

    def test_all_source_vars_uses_everything(self):
        scenario = ALL_SCENARIOS["B.4"]()
        _student, school = _skolemized_terms(scenario, ALL_SOURCE_VARS)
        assert _arg_names(school.terms[2]) == ["id", "n", "sid", "sc"]

    def test_source_here_and_ref_uses_atom_vars(self):
        scenario = ALL_SCENARIOS["B.4"]()
        _student, school = _skolemized_terms(scenario, SOURCE_HERE_AND_REF_VARS)
        assert _arg_names(school.terms[2]) == ["sid", "sc"]  # f_city(sid, scname)


class TestExampleB5:
    def test_key_only_variable(self):
        scenario = ALL_SCENARIOS["B.5"]()
        [school] = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        assert _arg_names(school.terms[0]) == ["id", "n", "sn"]
        [school] = _skolemized_terms(scenario, SOURCE_HERE_AND_REF_VARS)
        assert _arg_names(school.terms[0]) == ["sn"]


class TestNullPolicy:
    def test_nullable_only_variables_become_null(self):
        from repro.scenarios.cars import figure1_problem
        from repro.core.schema_mapping import generate_schema_mapping

        problem = figure1_problem()
        result = generate_schema_mapping(
            problem.source_schema, problem.target_schema, problem.correspondences
        )
        cars_mapping = result.schema_mapping.by_label("m2")  # C3 -> C2
        skolemized = skolemize_mapping(
            cars_mapping, problem.target_schema, use_null_for_nullable=True
        )
        assert skolemized.consequent[0].terms[2] is NULL_TERM

    def test_basic_mode_skolemizes_nullable(self):
        from repro.scenarios.cars import figure1_problem
        from repro.core.schema_mapping import generate_schema_mapping, BASIC

        problem = figure1_problem()
        result = generate_schema_mapping(
            problem.source_schema,
            problem.target_schema,
            problem.correspondences,
            algorithm=BASIC,
        )
        cars_mapping = result.schema_mapping.by_label("m2")  # C3 -> C2, P2
        skolemized = skolemize_mapping(
            cars_mapping,
            problem.target_schema,
            SOURCE_AND_RHS_VARS,
            use_null_for_nullable=False,
        )
        person = skolemized.consequent[0].terms[2]
        assert isinstance(person, SkolemTerm)
        assert _arg_names(person) == ["c", "m"]  # the paper's f_P(c, m)


class TestMachinery:
    def test_functor_names_include_mapping_label(self):
        scenario = ALL_SCENARIOS["B.2"]()
        [atom] = _skolemized_terms(scenario, ALL_SOURCE_OR_KEY_VARS)
        assert "@m1" in atom.terms[0].functor

    def test_no_existentials_is_identity(self):
        scenario = ALL_SCENARIOS["B.4"]()
        mapping = scenario.schema_mapping.mappings[0]
        # Remove the existential position by reusing a premise variable.
        bound = mapping.substitute_consequent(
            {mapping.existential_variables()[0]: mapping.source_variables()[0]}
        )
        result = skolemize_mapping(bound, scenario.target_schema)
        assert result.consequent == bound.consequent

    def test_unknown_strategy_rejected(self):
        scenario = ALL_SCENARIOS["B.1"]()
        with pytest.raises(QueryGenerationError):
            skolemize_mapping(
                scenario.schema_mapping.mappings[0],
                scenario.target_schema,
                strategy="bogus",
            )

    def test_all_strategies_listed(self):
        assert len(STRATEGIES) == 4
