"""Tests for coverage levels, coverage mappings and degree classification."""

from repro.core.chase import MODIFIED, chase_relation
from repro.core.correspondences import parse_referenced_attribute
from repro.core.coverage import (
    analyse_correspondence,
    coverage_level,
    coverage_mappings,
    is_covered_degree,
    is_poison_degree,
)
from repro.core.correspondences import correspondence
from repro.logic.tableau import MAND, NONE, NONNULL, NULL


def _c2_variants(cars2):
    tableaux = chase_relation(cars2, "C2", MODIFIED)
    return {
        ("null" if t.null_vars else "nonnull"): t for t in tableaux
    }


class TestCoverageLevels:
    def test_plain_attribute_levels(self, cars2):
        variants = _c2_variants(cars2)
        person = parse_referenced_attribute("C2.person")
        assert coverage_level(person, variants["null"]) == NULL
        assert coverage_level(person, variants["nonnull"]) == NONNULL
        model = parse_referenced_attribute("C2.model")
        assert coverage_level(model, variants["null"]) == MAND

    def test_absent_attribute_is_none(self, cars2):
        variants = _c2_variants(cars2)
        # P2 only occurs in the non-null variant.
        p2_name = parse_referenced_attribute("P2.name")
        assert coverage_level(p2_name, variants["null"]) == NONE
        assert coverage_level(p2_name, variants["nonnull"]) == MAND

    def test_referenced_attribute_level(self, cars3):
        tableaux = chase_relation(cars3, "O3", MODIFIED)
        owner_name = parse_referenced_attribute("O3.person > P3.name")
        assert coverage_level(owner_name, tableaux[0]) == MAND
        # In the P3-rooted tableau the path cannot start.
        p3 = chase_relation(cars3, "P3", MODIFIED)[0]
        assert coverage_level(owner_name, p3) == NONE

    def test_referenced_attribute_blocked_by_null_prefix(self, cars2):
        variants = _c2_variants(cars2)
        via_person = parse_referenced_attribute("C2.person > P2.name")
        assert coverage_level(via_person, variants["nonnull"]) == MAND
        assert coverage_level(via_person, variants["null"]) == NONE


class TestCoverageMappings:
    def test_mapping_indices(self, cars3):
        tableau = chase_relation(cars3, "O3", MODIFIED)[0]
        owner_name = parse_referenced_attribute("O3.person > P3.name")
        mappings = coverage_mappings(owner_name, tableau)
        assert len(mappings) == 1
        assert mappings[0].atom_indices == (0, 2)  # O3 atom, then P3 atom

    def test_referenced_term(self, cars3):
        tableau = chase_relation(cars3, "O3", MODIFIED)[0]
        owner_name = parse_referenced_attribute("O3.person > P3.name")
        [mapping] = coverage_mappings(owner_name, tableau)
        assert mapping.referenced_term(tableau) is tableau.term_at(2, "name")

    def test_no_mapping_for_absent_relation(self, cars3):
        tableau = chase_relation(cars3, "C3", MODIFIED)[0]
        owner_name = parse_referenced_attribute("O3.person > P3.name")
        assert coverage_mappings(owner_name, tableau) == []


class TestDegreeClassification:
    def test_covered_degrees(self):
        for degree in [(MAND, MAND), (MAND, NONNULL), (NONNULL, MAND), (NONNULL, NONNULL)]:
            assert is_covered_degree(degree)
            assert not is_poison_degree(degree)

    def test_poison_degrees(self):
        for degree in [(MAND, NULL), (NONNULL, NULL), (NULL, NONNULL)]:
            assert is_poison_degree(degree)
            assert not is_covered_degree(degree)

    def test_neutral_degrees(self):
        for degree in [(NULL, MAND), (NULL, NULL), (NONE, MAND), (MAND, NONE), (NULL, NONE)]:
            assert not is_covered_degree(degree)
            assert not is_poison_degree(degree)


class TestAnalyse:
    def test_covered_pair_suppresses_poison(self, cars3, cars2):
        # o2: O3.person -> C2.person is poison against the null variant but
        # covered against the non-null variant.
        o3 = chase_relation(cars3, "O3", MODIFIED)[0]
        variants = _c2_variants(cars2)
        o2 = correspondence("O3.person", "C2.person", "o2")
        against_null = analyse_correspondence(o2, o3, variants["null"])
        assert against_null.has_poison and not against_null.covered_pairs
        against_nonnull = analyse_correspondence(o2, o3, variants["nonnull"])
        assert against_nonnull.covered_pairs and not against_nonnull.has_poison

    def test_neutral_analysis(self, cars3, cars2):
        c3 = chase_relation(cars3, "C3", MODIFIED)[0]
        variants = _c2_variants(cars2)
        o2 = correspondence("O3.person", "C2.person", "o2")
        analysis = analyse_correspondence(o2, c3, variants["null"])
        assert not analysis.covered_pairs and not analysis.has_poison
