"""Tests for the fluent schema builder."""

import pytest

from repro.errors import SchemaError
from repro.model.builder import SchemaBuilder, parse_attribute


def test_parse_attribute_nullable_suffix():
    attribute = parse_attribute("email?")
    assert attribute.name == "email"
    assert attribute.nullable


def test_parse_attribute_plain():
    attribute = parse_attribute("name")
    assert attribute.name == "name"
    assert not attribute.nullable


def test_builder_roundtrip():
    schema = (
        SchemaBuilder("S")
        .relation("P", "person", "name", "email?", key="person")
        .relation("C", "car", "model", "person?", key="car")
        .foreign_key("C", "person", "P")
        .build()
    )
    assert schema.name == "S"
    assert schema.relation("P").is_nullable("email")
    assert not schema.relation("P").is_nullable("name")
    assert schema.foreign_key_from("C", "person").referenced == "P"


def test_default_key_is_first_attribute():
    schema = SchemaBuilder("S").relation("P", "id", "x").build()
    assert schema.relation("P").key == ("id",)


def test_empty_schema_rejected():
    with pytest.raises(SchemaError):
        SchemaBuilder("S").build()


def test_validation_can_be_skipped():
    builder = (
        SchemaBuilder("S")
        .relation("E", "id", "boss")
        .foreign_key("E", "boss", "E")
    )
    schema = builder.build(validate=False)  # no weak-acyclicity check
    assert schema.has_foreign_key_from("E", "boss")
