"""EXPLAIN ANALYZE profiles: internal consistency on every bundled scenario.

The differential invariants pinned here (see
``repro.datalog.exec.profile``):

* within one rule pipeline every operator's ``rows_in`` equals the previous
  operator's ``rows_out``;
* a rule's ``rows_unique`` equals the engine's ``rule_counts`` entry;
* a stratum's ``rows`` equals the materialized relation's size after
  cross-rule deduplication;
* ``workers=2`` and serial runs agree on every *rows* metric family
  (``eval.batches`` and index hit/miss counts legitimately differ — each
  worker batches and indexes its own slice).
"""

import pytest

from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.datalog.exec import evaluate_batch
from repro.model.instance import Instance
from repro.model.values import NULL
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer
from repro.scenarios import bundled_problems
from repro.scenarios.cars import figure1_problem
from repro.scenarios.synthetic import cars3_instance

SCENARIOS = sorted(bundled_problems())


def synthetic_source(problem, rows: int = 5) -> Instance:
    """A small source instance for any bundled problem.

    Key attributes get per-row unique values, foreign-key attributes copy
    the referenced relation's key values (so joins flow rows), and nullable
    attributes are null every third row.
    """
    schema = problem.source_schema
    referenced_by = {
        (fk.relation, fk.attribute): fk.referenced for fk in schema.foreign_keys
    }

    def key_value(relation_name: str, attribute: str, i: int) -> str:
        return f"{relation_name}.{attribute}.k{i}"

    instance = Instance(schema)
    for relation in schema:
        key = set(relation.key)
        for i in range(rows):
            row = []
            for attribute in relation.attributes:
                referenced = referenced_by.get((relation.name, attribute.name))
                if referenced is not None:
                    ref_key = schema.relation(referenced).key[0]
                    row.append(key_value(referenced, ref_key, i))
                elif attribute.name in key:
                    row.append(key_value(relation.name, attribute.name, i))
                elif attribute.nullable and i % 3 == 0:
                    row.append(NULL)
                else:
                    row.append(f"{relation.name}.{attribute.name}.{i % 2}")
            instance.add(relation.name, tuple(row))
    return instance


def assert_consistent(profile, result, program) -> None:
    """The profile invariants shared by every engine and scenario."""
    for stratum in profile.strata:
        relation_rows = result.intermediates.get(stratum.relation)
        if relation_rows is not None:
            assert stratum.rows == len(set(relation_rows)), stratum.relation
        else:
            assert stratum.rows == len(
                result.target.relation(stratum.relation)
            ), stratum.relation
        for rule in stratum.rules:
            assert rule.relation == stratum.relation
            assert rule.rows_unique == result.rule_counts[rule.rule_index]
            for previous, current in zip(rule.operators, rule.operators[1:]):
                assert current.rows_in == previous.rows_out, (
                    stratum.relation,
                    previous.kind,
                    current.kind,
                )
    assert profile.target_rows == result.target.total_size()
    derived = sum(r.rows_unique for r in profile.rule_profiles())
    assert derived == sum(result.rule_counts)


@pytest.mark.parametrize("name", SCENARIOS)
def test_batch_profile_is_consistent_on_every_scenario(name):
    problem = bundled_problems()[name]
    system = MappingSystem(problem)
    source = synthetic_source(problem)
    result = evaluate_batch(system.transformation, source, analyze=True)
    profile = result.profile
    assert profile is not None
    assert profile.engine == "batch"
    assert profile.source_rows == source.total_size()
    assert_consistent(profile, result, system.transformation)
    # Every rule pipeline is scan .. -> project, and the tree renders.
    for rule in profile.rule_profiles():
        assert rule.operators[0].kind == "scan"
        assert rule.operators[-1].kind == "project"
    text = profile.render()
    assert text.startswith("explain analyze (batch engine)")
    assert "stratum 0" in text


@pytest.mark.parametrize("name", SCENARIOS)
def test_reference_profile_is_consistent_on_every_scenario(name):
    problem = bundled_problems()[name]
    system = MappingSystem(problem)
    source = synthetic_source(problem)
    result = evaluate(system.transformation, source, analyze=True)
    profile = result.profile
    assert profile is not None
    assert profile.engine == "reference"
    assert_consistent(profile, result, system.transformation)
    # The tuple-at-a-time interpreter has no operator pipeline.
    assert all(not rule.operators for rule in profile.rule_profiles())
    assert "(no operator pipeline: reference engine)" in profile.render()


def test_analyze_off_means_no_profile():
    system = MappingSystem(figure1_problem())
    source = cars3_instance(n_persons=10, n_cars=20, ownership=0.6, seed=3)
    assert evaluate_batch(system.transformation, source).profile is None
    assert evaluate(system.transformation, source).profile is None


def test_profile_json_shape():
    system = MappingSystem(figure1_problem())
    source = cars3_instance(n_persons=10, n_cars=20, ownership=0.6, seed=3)
    result = evaluate_batch(system.transformation, source, analyze=True)
    data = result.profile.to_dict()
    assert data["engine"] == "batch"
    assert data["source_rows"] == source.total_size()
    kinds = {
        op["kind"]
        for stratum in data["strata"]
        for rule in stratum["rules"]
        for op in rule["operators"]
    }
    assert {"scan", "project"} <= kinds


def test_metrics_registry_implies_collection():
    """An active registry collects the profile even without analyze=True."""
    system = MappingSystem(figure1_problem())
    source = cars3_instance(n_persons=10, n_cars=20, ownership=0.6, seed=3)
    registry = MetricsRegistry()
    with use_metrics(registry):
        result = evaluate_batch(system.transformation, source)
    assert result.profile is not None
    assert registry.counter("eval.rows").value(
        engine="batch", kind="target"
    ) == result.target.total_size()
    assert registry.counter("exec.batches").value(engine="batch") > 0


def _rows_families(registry: MetricsRegistry) -> dict:
    """The row-count samples that must be identical serial vs workers."""
    out = {}
    for name in ("eval.rows", "exec.operator.rows_in", "exec.operator.rows_out"):
        counter = registry.get(name)
        assert counter is not None, name
        out[name] = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in counter.samples()
        }
    return out


@pytest.mark.serial
class TestWorkersProfile:
    """Partitioned evaluation: merged profiles and merged counters."""

    def _source(self):
        return cars3_instance(n_persons=60, n_cars=120, ownership=0.6, seed=9)

    def test_workers_profile_stays_consistent(self):
        program = MappingSystem(figure1_problem()).transformation
        result = evaluate_batch(
            program, self._source(), workers=2, min_partition_rows=1, analyze=True
        )
        profile = result.profile
        assert profile is not None
        assert profile.workers == 2
        assert_consistent(profile, result, program)
        assert "workers=2" in profile.render()

    def test_workers_rows_metrics_equal_serial(self):
        """Acceptance: every rows family agrees between workers=2 and serial."""
        program = MappingSystem(figure1_problem()).transformation
        source = self._source()
        serial, partitioned = MetricsRegistry(), MetricsRegistry()
        with use_metrics(serial):
            evaluate_batch(program, source, analyze=True)
        with use_metrics(partitioned):
            evaluate_batch(
                program, source, workers=2, min_partition_rows=1, analyze=True
            )
        assert _rows_families(serial) == _rows_families(partitioned)

    def test_worker_tracer_counters_are_merged(self):
        """Regression: pool workers' tracer counters used to be dropped.

        ``_run_slice`` now runs under a private tracer and ships its counters
        back for the parent to replay, so ``eval.batches`` (counted once per
        batch, inside the workers) must exceed the serial count of the
        parent process alone.
        """
        program = MappingSystem(figure1_problem()).transformation
        source = self._source()
        serial_tracer, worker_tracer = Tracer(), Tracer()
        with use_tracer(serial_tracer):
            evaluate_batch(program, source)
        with use_tracer(worker_tracer):
            evaluate_batch(program, source, workers=2, min_partition_rows=1)
        assert worker_tracer.counters.get("eval.batches", 0) > 0
        # Both slices of every partitioned scan count their own batches.
        assert worker_tracer.counters["eval.batches"] >= serial_tracer.counters[
            "eval.batches"
        ]
