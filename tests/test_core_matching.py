"""Tests for the name-based correspondence matcher."""

from repro.core.matching import (
    bootstrap_problem,
    name_similarity,
    suggest_correspondences,
)
from repro.core.pipeline import MappingSystem
from repro.scenarios import cars


class TestNameSimilarity:
    def test_exact_match(self):
        assert name_similarity("person", "person") == 1.0

    def test_case_insensitive(self):
        assert name_similarity("Person", "PERSON") == 1.0

    def test_partial(self):
        assert 0 < name_similarity("person", "personId") < 1

    def test_unrelated_low(self):
        assert name_similarity("car", "email") < 0.5


class TestSuggestions:
    def test_figure1_attributes_matched(self, cars3, cars2):
        suggestions = suggest_correspondences(cars3, cars2)
        pairs = {
            (repr(s.correspondence.source), repr(s.correspondence.target))
            for s in suggestions
        }
        assert ("P3.person", "P2.person") in pairs
        assert ("P3.name", "P2.name") in pairs
        assert ("P3.email", "P2.email") in pairs
        assert ("C3.car", "C2.car") in pairs
        assert ("C3.model", "C2.model") in pairs

    def test_one_suggestion_per_target_attribute(self, cars3, cars2):
        suggestions = suggest_correspondences(cars3, cars2)
        targets = [repr(s.correspondence.target) for s in suggestions]
        assert len(targets) == len(set(targets))

    def test_sorted_by_score(self, cars3, cars2):
        suggestions = suggest_correspondences(cars3, cars2)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_referenced_attribute_suggested(self):
        # CARS3 -> CARS1: C1.name has no plain C-relation counterpart, but
        # O3.person > P3.name reaches a 'name' attribute.
        problem = cars.figure4_problem()
        suggestions = suggest_correspondences(
            problem.source_schema, problem.target_schema
        )
        name_matches = [
            s for s in suggestions if s.correspondence.target.attribute == "name"
        ]
        assert name_matches
        # A path suggestion exists among all ranked candidates for C1.name:
        all_suggestions = suggest_correspondences(
            problem.source_schema, problem.target_schema, threshold=0.3
        )
        assert any(
            not s.correspondence.source.is_plain for s in all_suggestions
        ) or name_matches[0].correspondence.source.is_plain

    def test_threshold_filters(self, cars3, cars2):
        strict = suggest_correspondences(cars3, cars2, threshold=0.99)
        loose = suggest_correspondences(cars3, cars2, threshold=0.2)
        assert len(strict) <= len(loose)
        assert all(s.score >= 0.99 for s in strict)


class TestBootstrap:
    def test_bootstrapped_problem_runs_end_to_end(self, cars3, cars2, cars3_instance):
        problem, suggestions = bootstrap_problem(cars3, cars2, threshold=0.8)
        assert problem.correspondences
        assert all(c.label.startswith("auto") for c in problem.correspondences)
        system = MappingSystem(problem)
        output = system.transform(cars3_instance)
        # Exact-name matching recovers enough of Figure 1's lines that the
        # persons and cars are all moved.
        assert len(output.relation("P2")) == 2
        assert len(output.relation("C2")) == 2

    def test_bootstrap_validates_correspondences(self, cars3, cars2):
        problem, _ = bootstrap_problem(cars3, cars2)
        problem.validate()
