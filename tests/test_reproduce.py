"""Tests for the one-command paper reproduction."""

from repro.reproduce import render_reproduction_table, reproduce_all


def test_no_experiment_fails():
    results = reproduce_all()
    failed = [r for r in results if r.verdict == "FAIL"]
    assert not failed, failed


def test_experiment_coverage():
    results = reproduce_all()
    names = {r.experiment for r in results}
    # Every main-body figure and all ten appendix-A examples are covered.
    for figure in ("Figure 2", "Figure 3", "Figure 6", "Figure 8",
                   "Figure 13 / Ex C.2", "Figure 15 / Ex C.3"):
        assert figure in names
    assert sum(1 for n in names if n.startswith("Example A.")) == 10


def test_exact_majority():
    results = reproduce_all()
    exact = sum(1 for r in results if r.verdict == "exact")
    assert exact >= len(results) * 0.7  # most rows reproduce verbatim


def test_table_rendering():
    results = reproduce_all()
    table = render_reproduction_table(results)
    assert "0 failed" in table
    assert "[exact]" in table and "[shape]" in table


def test_cli_command(capsys):
    from repro.cli import main

    assert main(["reproduce"]) == 0
    out = capsys.readouterr().out
    assert "experiments:" in out and "0 failed" in out
