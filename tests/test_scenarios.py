"""Sanity tests for the scenario library (schemas, instances, generators)."""

import pytest

from repro.model.validation import validate_instance
from repro.scenarios import all_problems, appendix_a, appendix_b, cars, synthetic


class TestCarsScenarios:
    def test_all_problems_validate(self):
        for name, problem in all_problems().items():
            problem.validate()
            assert problem.correspondences, name

    def test_source_instances_satisfy_constraints(self):
        for instance in (
            cars.cars3_source_instance(),
            cars.figure8_source_instance(),
            cars.figure13_source_instance(),
            cars.figure15_source_instance(),
        ):
            assert validate_instance(instance).ok

    def test_expected_targets_satisfy_constraints(self):
        for instance in (
            cars.figure3_expected_target(),
            cars.figure6_expected_target(),
            cars.figure8_expected_target(),
            cars.figure13_expected_target(),
            cars.figure15_expected_target(),
        ):
            assert validate_instance(instance).ok

    def test_fresh_objects_each_call(self):
        assert cars.figure1_problem() is not cars.figure1_problem()
        a, b = cars.cars3_source_instance(), cars.cars3_source_instance()
        assert a == b and a is not b


class TestAppendixScenarios:
    @pytest.mark.parametrize("name", sorted(appendix_a.ALL_EXAMPLES))
    def test_appendix_a_problems_validate(self, name):
        appendix_a.ALL_EXAMPLES[name]().validate()

    @pytest.mark.parametrize("name", sorted(appendix_b.ALL_SCENARIOS))
    def test_appendix_b_scenarios_consistent(self, name):
        scenario = appendix_b.ALL_SCENARIOS[name]()
        assert validate_instance(scenario.source_instance).ok
        [mapping] = scenario.schema_mapping.mappings
        assert mapping.premise.atoms
        assert mapping.consequent


class TestSyntheticGenerators:
    def test_cars3_instance_valid_and_deterministic(self):
        a = synthetic.cars3_instance(10, 20, ownership=0.5, seed=7)
        b = synthetic.cars3_instance(10, 20, ownership=0.5, seed=7)
        assert a == b
        assert validate_instance(a).ok
        assert len(a.relation("P3")) == 10
        assert len(a.relation("C3")) == 20
        assert len(a.relation("O3")) <= 20

    def test_cars2_instance_null_fraction(self):
        instance = synthetic.cars2_instance(5, 40, null_fraction=1.0, seed=1)
        from repro.model.values import NULL

        assert all(row[2] is NULL for row in instance.relation("C2"))
        assert validate_instance(instance).ok

    def test_cars4_instance_valid(self):
        instance = synthetic.cars4_instance(8, 15, seed=3)
        assert validate_instance(instance).ok

    def test_chain_schema_and_instance(self):
        schema = synthetic.chain_schema(3)
        schema.validate()
        instance = synthetic.chain_instance(schema, rows_per_relation=5, seed=0)
        assert validate_instance(instance).ok
        assert instance.total_size() == 20

    def test_chain_problem_runs(self):
        from repro.core.pipeline import MappingSystem

        problem = synthetic.chain_problem(2)
        system = MappingSystem(problem)
        schema = problem.source_schema
        instance = synthetic.chain_instance(schema, rows_per_relation=4, seed=0)
        output = system.transform(instance)
        assert validate_instance(output).ok
        assert output.total_size() > 0

    def test_wide_problem_shape(self):
        problem = synthetic.wide_problem(3)
        assert len(problem.correspondences) == 4
        assert problem.target_schema.relation("T").is_nullable("a0")

    def test_zero_sizes(self):
        instance = synthetic.cars3_instance(0, 0)
        assert instance.total_size() == 0
