"""Tests for logical relation generation (standard and modified chase)."""

import pytest

from repro.core.chase import (
    MODIFIED,
    STANDARD,
    chase_relation,
    logical_relations,
    modified_chase,
    standard_chase,
)
from repro.errors import WeakAcyclicityError
from repro.model.builder import SchemaBuilder
from repro.scenarios.synthetic import chain_schema


class TestStandardChase:
    def test_cars3_logical_relations(self, cars3):
        tableaux = logical_relations(cars3, mode=STANDARD)
        shapes = [[a.relation for a in t] for t in tableaux]
        # Paper section 3.2: P3 | C3 | O3, C3, P3.
        assert shapes == [["P3"], ["C3"], ["O3", "C3", "P3"]]

    def test_standard_ignores_nullability(self, cars2):
        tableau = standard_chase(cars2, "C2")
        assert [a.relation for a in tableau] == ["C2", "P2"]
        assert not tableau.null_vars and not tableau.nonnull_vars

    def test_single_tableau_per_relation(self, cars2a):
        assert len(chase_relation(cars2a, "C2a", STANDARD)) == 1

    def test_join_variable_reused(self, cars3):
        tableau = standard_chase(cars3, "O3")
        assert tableau.term_at(0, "car") is tableau.term_at(1, "car")
        assert tableau.term_at(0, "person") is tableau.term_at(2, "person")


class TestModifiedChase:
    def test_example_5_1_cars2(self, cars2):
        """Example 5.1: the three logical relations of CARS2."""
        tableaux = logical_relations(cars2, mode=MODIFIED)
        shapes = [
            ([a.relation for a in t], len(t.null_vars), len(t.nonnull_vars))
            for t in tableaux
        ]
        assert shapes == [
            (["P2"], 0, 0),
            (["C2"], 1, 0),  # C2(c, m, p), p = null
            (["C2", "P2"], 0, 1),  # C2(c, m, p), p != null, P2(p, n, e)
        ]

    def test_null_branch_listed_first(self, cars2):
        tableaux = chase_relation(cars2, "C2", MODIFIED)
        assert len(tableaux[0].null_vars) == 1
        assert len(tableaux[1].nonnull_vars) == 1

    def test_mandatory_fk_always_traversed(self, cars3):
        tableaux = chase_relation(cars3, "O3", MODIFIED)
        assert len(tableaux) == 1
        assert [a.relation for a in tableaux[0]] == ["O3", "C3", "P3"]

    def test_non_fk_nullable_splits(self):
        schema = SchemaBuilder("s").relation("R", "k", "a?", "b?").build()
        tableaux = chase_relation(schema, "R", MODIFIED)
        assert len(tableaux) == 4  # 2 nullable attributes -> 4 combinations
        conditions = {
            (len(t.null_vars), len(t.nonnull_vars)) for t in tableaux
        }
        assert conditions == {(2, 0), (1, 1), (0, 2)} or len(tableaux) == 4

    def test_cars4_od_target_splits_four_ways(self):
        from repro.scenarios.cars import carsod_schema

        tableaux = logical_relations(carsod_schema(), mode=MODIFIED)
        assert len(tableaux) == 4  # Example C.2's four target logical relations

    def test_decisions_recorded(self, cars2):
        tableaux = chase_relation(cars2, "C2", MODIFIED)
        assert tableaux[0].decisions == {((), "person"): "null"}
        assert tableaux[1].decisions == {((), "person"): "nonnull"}

    def test_chain_depth_gives_prefixes(self):
        schema = chain_schema(3, nullable_links=True)
        tableaux = chase_relation(schema, "R0", MODIFIED)
        assert sorted(len(t) for t in tableaux) == [1, 2, 3, 4]

    def test_mandatory_chain_single_tableau(self):
        schema = chain_schema(3, nullable_links=False)
        tableaux = chase_relation(schema, "R0", MODIFIED)
        assert len(tableaux) == 1
        assert len(tableaux[0]) == 4


class TestSafety:
    def test_weak_acyclicity_enforced(self):
        schema = (
            SchemaBuilder("bad")
            .relation("E", "id", "manager")
            .foreign_key("E", "manager", "E")
            .build(validate=False)
        )
        with pytest.raises(WeakAcyclicityError):
            logical_relations(schema)

    def test_nullable_self_fk_also_rejected(self):
        # Even nullable self-references are outside the weakly acyclic class.
        schema = (
            SchemaBuilder("bad")
            .relation("E", "id", "manager?")
            .foreign_key("E", "manager", "E")
            .build(validate=False)
        )
        with pytest.raises(WeakAcyclicityError):
            logical_relations(schema)

    def test_deterministic_output(self, cars2):
        first = [t.signature() for t in logical_relations(cars2)]
        second = [t.signature() for t in logical_relations(cars2)]
        assert first == second


def test_modified_chase_convenience(cars2):
    assert len(modified_chase(cars2, "C2")) == 2
