"""Tests for partial tableaux: levels, identity, non-null extension."""

from repro.core.chase import MODIFIED, STANDARD, chase_relation
from repro.logic.tableau import MAND, NONNULL, NULL


def _by_conditions(tableaux):
    """Index CARS2's C2 tableaux by whether person is null."""
    result = {}
    for tableau in tableaux:
        for (path, attr), choice in tableau.decisions.items():
            if attr == "person":
                result[choice] = tableau
    return result


class TestTableauStructure:
    def test_root_and_children(self, cars2):
        tableaux = chase_relation(cars2, "C2", MODIFIED)
        variants = _by_conditions(tableaux)
        nonnull = variants[NONNULL]
        assert nonnull.root_relation == "C2"
        assert nonnull.root_atom.relation == "C2"
        assert [a.relation for a in nonnull.atoms] == ["C2", "P2"]
        assert nonnull.child_of(0, "person") == 1
        assert nonnull.child_of(0, "car") is None
        assert nonnull.paths == ((), ("person",))

    def test_shared_join_variable(self, cars2):
        tableaux = chase_relation(cars2, "C2", MODIFIED)
        nonnull = _by_conditions(tableaux)[NONNULL]
        fk_term = nonnull.term_at(0, "person")
        key_term = nonnull.term_at(1, "person")
        assert fk_term is key_term

    def test_atoms_for(self, cars2):
        nonnull = _by_conditions(chase_relation(cars2, "C2", MODIFIED))[NONNULL]
        assert nonnull.atoms_for("P2") == [1]
        assert nonnull.atoms_for("C2") == [0]
        assert nonnull.atoms_for("zzz") == []


class TestAttributeLevels:
    def test_mandatory_level(self, cars2):
        tableaux = chase_relation(cars2, "P2", MODIFIED)
        assert len(tableaux) == 1
        assert tableaux[0].attribute_level(0, "name") == MAND

    def test_null_and_nonnull_levels(self, cars2):
        variants = _by_conditions(chase_relation(cars2, "C2", MODIFIED))
        assert variants[NULL].attribute_level(0, "person") == NULL
        assert variants[NONNULL].attribute_level(0, "person") == NONNULL

    def test_standard_chase_has_mand_levels(self, cars2):
        tableaux = chase_relation(cars2, "C2", STANDARD)
        assert len(tableaux) == 1
        # Standard tableaux carry no conditions: present attributes are plain.
        assert tableaux[0].attribute_level(0, "person") == MAND


class TestIdentityAndExtension:
    def test_signature_equality(self, cars2):
        first = chase_relation(cars2, "C2", MODIFIED)
        second = chase_relation(cars2, "C2", MODIFIED)
        firsts = _by_conditions(first)
        seconds = _by_conditions(second)
        assert firsts[NULL] == seconds[NULL]
        assert firsts[NULL] != seconds[NONNULL]
        assert hash(firsts[NULL]) == hash(seconds[NULL])

    def test_nonnull_extension_of_null_sibling(self, cars2):
        variants = _by_conditions(chase_relation(cars2, "C2", MODIFIED))
        assert variants[NONNULL].is_nonnull_extension_of(variants[NULL])
        assert not variants[NULL].is_nonnull_extension_of(variants[NONNULL])
        assert not variants[NULL].is_nonnull_extension_of(variants[NULL])

    def test_extension_requires_same_root(self, cars2):
        c2 = _by_conditions(chase_relation(cars2, "C2", MODIFIED))[NONNULL]
        p2 = chase_relation(cars2, "P2", MODIFIED)[0]
        assert not c2.is_nonnull_extension_of(p2)

    def test_non_fk_nullable_is_not_an_extension(self):
        # Nullable attributes without a foreign key split the tableau but do
        # NOT create the ≺ relation (the definition prunes over nullable FKs).
        from repro.model.builder import SchemaBuilder

        schema = SchemaBuilder("s").relation("R", "k", "v?").build()
        tableaux = chase_relation(schema, "R", MODIFIED)
        assert len(tableaux) == 2
        a, b = tableaux
        assert not a.is_nonnull_extension_of(b)
        assert not b.is_nonnull_extension_of(a)

    def test_deep_extension_chain(self):
        from repro.scenarios.synthetic import chain_schema

        schema = chain_schema(2, nullable_links=True)
        tableaux = chase_relation(schema, "R0", MODIFIED)
        # Prefixes: R0 | R0,R1 | R0,R1,R2 — 3 tableaux.
        assert len(tableaux) == 3
        by_size = sorted(tableaux, key=len)
        assert [len(t) for t in by_size] == [1, 2, 3]
        assert by_size[1].is_nonnull_extension_of(by_size[0])
        assert by_size[2].is_nonnull_extension_of(by_size[1])
        assert by_size[2].is_nonnull_extension_of(by_size[0])
        assert not by_size[0].is_nonnull_extension_of(by_size[1])
