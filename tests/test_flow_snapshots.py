"""Golden abstract-state snapshots and the nullability soundness check.

Two acceptance-level guarantees live here:

* the solved per-position abstract states of every bundled scenario match
  the checked-in fixture ``tests/fixtures/flow_states.json`` verbatim —
  any change to a lattice, a transfer function or query generation that
  shifts an abstract value shows up as a reviewable fixture diff;
* the nullability verdicts are *sound* with respect to the engine: on the
  canonical instances the semantic verifier builds for each scenario, a
  position the analysis grades ``NO`` never holds the unlabeled null in any
  evaluated row, and a position graded ``YES`` always does.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.flow import NO, YES, analyze_flow
from repro.analysis.semantic.verifier import canonical_instances
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.model.validation import validate_instance
from repro.model.values import LabeledNull, is_null
from repro.scenarios import bundled_problems

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "flow_states.json")


def _golden():
    with open(FIXTURE) as handle:
        return json.load(handle)


def _scenario_names():
    return sorted(bundled_problems())


class TestGoldenStates:
    def test_fixture_covers_every_bundled_scenario(self):
        assert sorted(_golden()) == _scenario_names()

    @pytest.mark.parametrize("name", _scenario_names())
    def test_states_match_fixture(self, name):
        problem = bundled_problems()[name]
        report = MappingSystem(problem).flow_report()
        expected = _golden()[name]
        assert report.states() == expected, (
            f"abstract states drifted for {name!r}; if the change is "
            "intentional, regenerate tests/fixtures/flow_states.json"
        )

    def test_fixture_has_all_three_analyses(self):
        for name, states in _golden().items():
            assert set(states) == {"nullability", "provenance", "keyorigin"}, name
            relations = {
                analysis: sorted(per_relation)
                for analysis, per_relation in states.items()
            }
            # The three analyses describe the same program: same relations.
            assert (
                relations["nullability"]
                == relations["provenance"]
                == relations["keyorigin"]
            ), name


def _unlabeled_null(value):
    return is_null(value) and not isinstance(value, LabeledNull)


class TestNullabilitySoundness:
    """Cross-check the abstract verdicts against concrete evaluation."""

    @pytest.mark.parametrize("name", _scenario_names())
    def test_verdicts_hold_on_canonical_instances(self, name):
        problem = bundled_problems()[name]
        program = MappingSystem(problem).transformation
        report = analyze_flow(program, problem)
        nullability = report.nullability

        checked = 0
        for label, instance in canonical_instances(program):
            if not validate_instance(instance).ok:
                continue  # the verifier also builds deliberately broken ones
            result = evaluate(program, instance)
            rows = [
                (relation, row) for relation, row in result.target.facts()
            ]
            for relation, derived in result.intermediates.items():
                rows.extend((relation, row) for row in derived)
            for relation, row in rows:
                for position, value in enumerate(row):
                    status = nullability.value(relation, position)
                    if status == NO:
                        assert not _unlabeled_null(value), (
                            name, label, relation, position, value
                        )
                    elif status == YES:
                        assert _unlabeled_null(value), (
                            name, label, relation, position, value
                        )
                    checked += 1
        assert checked > 0, f"no canonical instance evaluated for {name!r}"
