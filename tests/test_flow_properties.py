"""Property tests for the flow engine: post-fixpoint and monotonicity.

The worklist solver is only correct if (a) the state it returns really is a
fixpoint — re-applying any rule's transfer function adds nothing — and (b)
the client transfer functions are monotone in the environment, which is what
makes the fixpoint the *least* one and the whole analysis deterministic.
Both are checked here on randomly generated programs (including recursive
ones, which the generated mappings never contain but the solver supports).
"""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.analysis.flow import (
    KeyOriginAnalysis,
    NullabilityAnalysis,
    ProvenanceAnalysis,
    solve,
)
from repro.analysis.flow.lattice import MAYBE
from repro.analysis.flow.keyorigin import OPEN
from repro.analysis.flow.solver import Environment
from repro.datalog.program import DatalogProgram, Rule
from repro.datalog.stratify import stratify
from repro.errors import DatalogError
from repro.logic.atoms import RelationalAtom
from repro.logic.terms import NULL_TERM, Constant, SkolemTerm, Variable
from repro.model.builder import SchemaBuilder

ARITY = 2
SOURCES = ("S0", "S1")
TARGETS = ("T0", "T1", "T2")


def _source_schema():
    builder = SchemaBuilder("s")
    builder.relation("S0", "a", "b?", key="a")
    builder.relation("S1", "c", "d", key="c")
    return builder.build(validate=False)


@st.composite
def rules(draw):
    """One random rule: 1-2 body atoms, random head terms and conditions.

    Bodies may read target relations, so generated programs can be
    recursive.  Variables are shared by object identity within the rule, as
    the real query generator does.
    """
    pool = [Variable(name) for name in ("x", "y", "z")]
    body = []
    for _ in range(draw(st.integers(1, 2))):
        relation = draw(st.sampled_from(SOURCES + TARGETS))
        terms = tuple(
            pool[draw(st.integers(0, len(pool) - 1))] for _ in range(ARITY)
        )
        body.append(RelationalAtom(relation, terms))
    bound = [var for atom in body for var in atom.terms]

    def head_term():
        kind = draw(st.integers(0, 3))
        if kind == 0:
            return draw(st.sampled_from(bound))
        if kind == 1:
            return SkolemTerm("f", (draw(st.sampled_from(bound)),))
        if kind == 2:
            return Constant("c")
        return NULL_TERM

    head = RelationalAtom(
        draw(st.sampled_from(TARGETS)),
        tuple(head_term() for _ in range(ARITY)),
    )
    null_vars = tuple(
        var for var in set(bound) if draw(st.booleans()) and draw(st.booleans())
    )
    nonnull_vars = tuple(
        var
        for var in set(bound)
        if var not in null_vars and draw(st.booleans()) and draw(st.booleans())
    )
    return Rule(head, tuple(body), null_vars=null_vars, nonnull_vars=nonnull_vars)


@st.composite
def programs(draw):
    return DatalogProgram(
        rules=draw(st.lists(rules(), min_size=1, max_size=5)),
        source_schema=_source_schema(),
    )


ANALYSES = (NullabilityAnalysis, ProvenanceAnalysis, KeyOriginAnalysis)


def _bump(analysis, value):
    """A value strictly above (or equal to) ``value`` in the lattice."""
    if isinstance(analysis, NullabilityAnalysis):
        return MAYBE
    if isinstance(analysis, KeyOriginAnalysis):
        return OPEN
    return analysis.lattice.join(value, frozenset({("extra",)}))


@settings(max_examples=60, deadline=None)
@given(programs(), st.sampled_from(ANALYSES))
def test_solver_reaches_a_post_fixpoint(program, make_analysis):
    analysis = make_analysis(program)
    result = solve(program, analysis)
    lattice = analysis.lattice
    for rule in program.rules:
        row = analysis.transfer(rule, result.env)
        if row is None:
            continue  # the rule derives nothing: contributes bottom
        for position, value in enumerate(row):
            current = result.env.lookup(rule.head_relation, position)
            assert lattice.leq(value, current), (rule, position, value, current)


@settings(max_examples=60, deadline=None)
@given(programs(), st.sampled_from(ANALYSES))
def test_transfer_is_monotone_in_the_environment(program, make_analysis):
    analysis = make_analysis(program)
    lattice = analysis.lattice
    smaller = solve(program, analysis).env
    # Build a pointwise-larger environment: every value the solver computed
    # is joined upward; positions the solver never touched answer with their
    # seed in ``larger`` and with bottom (for defined relations) in
    # ``smaller`` — both directions keep smaller ⊑ larger.
    larger = Environment(analysis)
    for (relation, position), value in smaller.items():
        larger.set(relation, position, lattice.join(value, _bump(analysis, value)))
    for rule in program.rules:
        low = analysis.transfer(rule, smaller)
        high = analysis.transfer(rule, larger)
        if low is None:
            continue  # bottom row: below anything
        assert high is not None, (rule, low)
        for position, value in enumerate(low):
            assert lattice.leq(value, high[position]), (
                rule, position, value, high[position]
            )


@settings(max_examples=40, deadline=None)
@given(programs())
def test_solving_is_deterministic(program):
    first = solve(program, NullabilityAnalysis(program))
    second = solve(program, NullabilityAnalysis(program))
    for relation in program.defined_relations():
        assert first.relation_values(relation) == second.relation_values(relation)
    assert first.stats.to_dict() == second.stats.to_dict()


@settings(max_examples=40, deadline=None)
@given(programs())
def test_stratified_programs_solve_in_one_sweep(program):
    # Programs without recursion — the only kind query generation emits —
    # must solve in a single stratified sweep, with no widening.  (On
    # recursive programs the join-as-widen of a finite domain may still be
    # *counted* past the visit threshold, so the claim is restricted.)
    try:
        stratify(program)
    except DatalogError:
        assume(False)
    for make_analysis in ANALYSES:
        result = solve(program, make_analysis(program))
        assert result.stats.widenings == 0
        assert result.stats.iterations == result.stats.relations
