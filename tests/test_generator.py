"""Validity properties of the seeded scenario generator.

Every weakly acyclic generated scenario must be *boring* in the best sense:
lint-clean, with a valid paired source instance, certifying bounded with no
refutations, and rendering to DSL text that parses back to the same problem
and instance.  Cyclic mode must be reliably broken — ``SCH010`` from the
lint, :class:`WeakAcyclicityError` from validation, and a refusal from the
``MappingSystem`` constructor — while still pairing a valid instance (the
two-phase builder handles reciprocal foreign keys).  These are the
invariants the eval matrix (``repro eval``) leans on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.analyzer import quick_lint
from repro.analysis.certify import PROVED, certify_program
from repro.core.pipeline import MappingSystem
from repro.dsl import parse_instance, parse_problem, render_instance, render_problem
from repro.errors import WeakAcyclicityError
from repro.model.validation import validate_instance
from repro.scenarios import generated_problems
from repro.scenarios.generator import (
    DEFAULT,
    SMALL,
    GeneratorConfig,
    generate_scenario,
    generate_unbounded_program,
)

from .strategies import generated_scenarios

CYCLIC = GeneratorConfig(weakly_acyclic=False)

seeds = st.integers(0, 499)


@settings(max_examples=30, deadline=None)
@given(generated_scenarios)
def test_generated_problems_lint_clean(scenario):
    """No generated weakly acyclic problem carries a lint *error*."""
    report = quick_lint(scenario.problem)
    assert report.errors == [], report.render()


@settings(max_examples=30, deadline=None)
@given(generated_scenarios)
def test_generated_instances_are_valid(scenario):
    """Paired source instances are key-unique and foreign-key closed."""
    report = validate_instance(scenario.source_instance)
    assert report.ok, report.summary()


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_weakly_acyclic_scenarios_certify_bounded(seed):
    """The certifier proves termination (no TRM001 downgrade), refutes nothing."""
    system = MappingSystem(generate_scenario(seed, SMALL).problem)
    report = system.certify()
    assert not report.refuted, report.render()
    termination = report.of_kind("termination")
    assert termination and all(v.verdict == PROVED for v in termination)
    assert system.cost_report().bounded


@settings(max_examples=20, deadline=None)
@given(generated_scenarios)
def test_dsl_round_trips(scenario):
    """Rendered DSL parses back to a problem that renders identically."""
    reparsed = parse_problem(scenario.dsl, name=scenario.name)
    assert render_problem(reparsed) == scenario.dsl
    instance = parse_instance(scenario.instance_text, scenario.problem.source_schema)
    assert instance == scenario.source_instance
    assert render_instance(instance) == scenario.instance_text


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_cyclic_mode_trips_weak_acyclicity(seed):
    """Cyclic scenarios are reliably rejected, with a valid instance anyway."""
    scenario = generate_scenario(seed, CYCLIC)
    report = quick_lint(scenario.problem)
    assert "SCH010" in report.codes()
    with pytest.raises(WeakAcyclicityError):
        scenario.problem.source_schema.validate()
    with pytest.raises(WeakAcyclicityError):
        MappingSystem(scenario.problem)
    assert validate_instance(scenario.source_instance).ok


def test_unbounded_program_yields_trm001():
    """The recursive-Skolem program is the pinned TRM001 downgrade case."""
    report = certify_program(generate_unbounded_program(), subject="unbounded")
    termination = report.of_kind("termination")
    assert termination and termination[0].code == "TRM001"
    assert termination[0].verdict != PROVED
    assert not report.ok
    assert report.counts()["PROVED"] == 0  # everything downgraded to UNKNOWN


@settings(max_examples=15, deadline=None)
@given(seeds)
def test_generation_is_deterministic_in_process(seed):
    """Same seed, same config — byte-identical DSL and instance text."""
    first = generate_scenario(seed, DEFAULT)
    second = generate_scenario(seed, DEFAULT)
    assert first.dsl == second.dsl
    assert first.instance_text == second.instance_text


def test_generated_problems_bridge_mirrors_bundled():
    problems = generated_problems(range(3))
    assert sorted(problems) == ["gen-0", "gen-1", "gen-2"]
    assert problems["gen-1"].name == "gen-1"
