"""The perf-regression gate: timing extraction, diffing and the CLI."""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    diff_benchmarks,
    extract_timings,
    load_bench_file,
    stamp_metadata,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: A plausible BENCH_scaling.json payload (legacy bare shape).
BARE = {
    "figure1-cars3": {
        "100": {"reference": 0.01, "batch": 0.004, "speedup": 2.5},
        "1600": {"reference": 0.2, "batch": 0.05, "speedup": 4.0},
    },
    "figure12-cars4": {
        "100": {"reference": 0.008, "batch": 0.003, "speedup": 2.67},
    },
}


class TestExtractTimings:
    def test_dotted_paths_for_timing_leaves_only(self):
        timings = extract_timings(BARE)
        assert timings["figure1-cars3.100.batch"] == 0.004
        assert timings["figure1-cars3.1600.reference"] == 0.2
        # speedup is a ratio, not a wall time
        assert not any(key.endswith("speedup") for key in timings)

    def test_meta_wrapper_is_transparent(self):
        stamped = stamp_metadata(copy.deepcopy(BARE))
        assert set(stamped) == {"meta", "results"}
        assert stamped["meta"]["python"]
        assert extract_timings(stamped) == extract_timings(BARE)

    def test_pipeline_shape_and_lists(self):
        data = {"examples": [{"name": "a", "wall_time": 0.5, "tuples": 9}]}
        assert extract_timings(data) == {"examples[0].wall_time": 0.5}


class TestDiffBenchmarks:
    def test_identical_reports_pass(self):
        report = diff_benchmarks(BARE, copy.deepcopy(BARE))
        assert report.ok
        assert not report.regressions
        assert report.render().endswith("PASS")

    def test_three_x_regression_fails(self):
        current = copy.deepcopy(BARE)
        current["figure1-cars3"]["1600"]["batch"] = 0.15  # 3x the baseline
        report = diff_benchmarks(BARE, current)
        assert not report.ok
        assert [c.key for c in report.regressions] == [
            "figure1-cars3.1600.batch"
        ]
        assert report.regressions[0].ratio == pytest.approx(3.0)
        assert "REGRESSION" in report.render()
        assert report.render().endswith("FAIL")

    def test_improvements_are_reported_not_failed(self):
        current = copy.deepcopy(BARE)
        current["figure1-cars3"]["1600"]["reference"] = 0.05  # 4x faster
        report = diff_benchmarks(BARE, current)
        assert report.ok
        assert [c.key for c in report.improvements] == [
            "figure1-cars3.1600.reference"
        ]

    def test_noise_floor_skips_sub_millisecond_baselines(self):
        baseline = {"tiny": {"batch": 0.0002}}
        current = {"tiny": {"batch": 0.002}}  # 10x, but the baseline is noise
        report = diff_benchmarks(baseline, current)
        assert report.ok
        assert [c.key for c in report.skipped] == ["tiny.batch"]

    def test_missing_and_added_scenarios_are_listed(self):
        current = copy.deepcopy(BARE)
        del current["figure12-cars4"]
        current["new-workload"] = {"100": {"batch": 0.001}}
        report = diff_benchmarks(BARE, current)
        assert report.ok
        assert report.missing == ["figure12-cars4.100.reference",
                                  "figure12-cars4.100.batch"]
        assert report.added == ["new-workload.100.batch"]

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError, match="exceed 1.0"):
            diff_benchmarks(BARE, BARE, threshold=1.0)

    def test_report_round_trips_to_json(self):
        current = copy.deepcopy(BARE)
        current["figure1-cars3"]["1600"]["batch"] = 0.5
        data = diff_benchmarks(BARE, current).to_dict()
        assert data["ok"] is False
        assert json.loads(json.dumps(data)) == data


class TestCommittedBaselines:
    """The checked-in BENCH_*.json files must gate against themselves."""

    @pytest.mark.parametrize(
        "name", ["BENCH_scaling.json", "BENCH_pipeline.json"]
    )
    def test_self_compare_passes(self, name):
        path = REPO_ROOT / name
        data = load_bench_file(str(path))
        assert set(data) == {"meta", "results"}  # stamped format
        assert extract_timings(data), f"{name} has no timing leaves"
        assert diff_benchmarks(data, data).ok


class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", "bench-diff", *argv],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=str(REPO_ROOT),
        )

    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_identical_files_exit_zero(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BARE)
        current = self._write(tmp_path, "cur.json", BARE)
        proc = self._run(baseline, current)
        assert proc.returncode == 0, proc.stderr
        assert "PASS" in proc.stdout

    def test_synthetic_regression_exits_nonzero(self, tmp_path):
        slow = copy.deepcopy(BARE)
        slow["figure1-cars3"]["1600"]["batch"] = 0.15  # 3x
        baseline = self._write(tmp_path, "base.json", BARE)
        current = self._write(tmp_path, "cur.json", slow)
        proc = self._run(baseline, current)
        assert proc.returncode == 1
        assert "REGRESSION figure1-cars3.1600.batch" in proc.stdout
        assert "FAIL" in proc.stdout

    def test_json_output(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BARE)
        current = self._write(tmp_path, "cur.json", BARE)
        proc = self._run(baseline, current, "--json")
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout)["ok"] is True

    def test_unreadable_file_exits_two(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BARE)
        proc = self._run(baseline, str(tmp_path / "missing.json"))
        assert proc.returncode == 2
        assert "error" in proc.stderr

    def test_bad_threshold_exits_two(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", BARE)
        proc = self._run(baseline, baseline, "--threshold", "0.5")
        assert proc.returncode == 2
