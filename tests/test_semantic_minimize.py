"""Tests for the semantic minimizer (SEM001/SEM002) and its soundness."""

from repro.analysis.semantic.minimize import (
    mapping_diagnostics,
    minimize_program,
    minimize_unitary_mappings,
)
from repro.core.pipeline import MappingSystem
from repro.datalog.engine import evaluate
from repro.scenarios import cars, synthetic


def _unoptimized(problem):
    return MappingSystem(problem, optimize=False)


class TestProgramMinimization:
    def test_figure10_removes_redundant_projection(self):
        system = _unoptimized(cars.figure10_problem())
        program = system.query_result().program
        result = minimize_program(program)
        assert len(result.removed) == 1
        removal = result.removed[0]
        assert removal.rule.head_relation == "P2a"
        assert len(removal.rule.body) > len(removal.by.body)
        assert removal.witness.kind == "homomorphism"
        assert len(result.program.rules) == len(program.rules) - 1

    def test_figure14_removes_rule_with_nonnull_condition(self):
        system = _unoptimized(cars.figure14_problem())
        program = system.query_result().program
        result = minimize_program(program)
        assert len(result.removed) == 1
        assert result.removed[0].rule.head_relation == "P3"
        # The removed rule carries the p != null condition of the join.
        assert result.removed[0].rule.nonnull_vars

    def test_removal_matches_syntactic_optimizer(self):
        for problem in (cars.figure1_problem(), cars.figure7_problem(),
                        cars.figure10_problem(), cars.figure14_problem()):
            unopt = _unoptimized(problem).query_result().program
            opt = MappingSystem(problem).query_result().program
            minimized = minimize_program(unopt).program
            assert len(minimized.rules) == len(opt.rules), problem.name

    def test_optimized_program_is_already_minimal(self):
        for problem in (cars.figure1_problem(), cars.figure10_problem(),
                        cars.figure12_problem(), cars.figure14_problem()):
            program = MappingSystem(problem).query_result().program
            assert minimize_program(program).removed == [], problem.name

    def test_minimized_program_computes_the_same_target(self):
        cases = [
            (cars.figure10_problem(), cars.cars3_source_instance()),
            (cars.figure10_problem(), synthetic.cars3_instance(6, 8, seed=3)),
            (cars.figure14_problem(), synthetic.cars2_instance(5, 7, seed=1)),
        ]
        for problem, source in cases:
            program = _unoptimized(problem).query_result().program
            minimized = minimize_program(program)
            assert minimized.removed, problem.name
            before = evaluate(program, source).target
            after = evaluate(minimized.program, source).target
            assert before == after, problem.name

    def test_diagnostics_carry_witnesses(self):
        program = _unoptimized(cars.figure10_problem()).query_result().program
        diags = minimize_program(program).diagnostics()
        assert [d.code for d in diags] == ["SEM001"]
        assert diags[0].witness and "->" in diags[0].witness
        assert "witness" in diags[0].render()


class TestUnitaryMinimization:
    def test_figure10_flags_subsumed_mapping(self):
        system = MappingSystem(cars.figure10_problem())
        final = system.query_result().final
        flagged = minimize_unitary_mappings(final)
        assert len(flagged) == 1
        item = flagged[0]
        assert item.mapping.consequent.relation == "P2a"
        assert len(item.mapping.premise.atoms) > len(item.by.premise.atoms)
        diags = mapping_diagnostics(flagged)
        assert [d.code for d in diags] == ["SEM002"]
        assert diags[0].witness

    def test_figure1_flags_only_the_p2_projection(self):
        # Figure 1: m3's P2 projection is subsumed by m1 (the rule the
        # syntactic optimizer drops); the C2 mappings partition on
        # p = null / != null and survive.
        system = MappingSystem(cars.figure1_problem())
        flagged = minimize_unitary_mappings(system.query_result().final)
        assert [item.mapping.consequent.relation for item in flagged] == ["P2"]
        assert all(
            item.mapping.consequent.relation != "C2" for item in flagged
        )
