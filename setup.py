"""Legacy setup shim: the offline environment lacks the wheel package,
so editable installs go through setuptools' classic develop path."""

from setuptools import setup

setup()
